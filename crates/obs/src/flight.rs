//! Flight-dump document: the JSONL snapshot a run writes when something
//! goes wrong.
//!
//! The kernel-side [`wsn_sim::FlightRecorder`] retains the most recent
//! dispatches per shard in preallocated rings; this module is the
//! serialization boundary. A [`FlightDump`] is built from a recorder at
//! the moment of failure (panic, perf-gate trip, chaos `Wrong` verdict),
//! written as schema-versioned JSON Lines, and read back by `netscope
//! flight` for rendering. Like [`crate::trace`], the format round-trips
//! losslessly and refuses records from an unknown schema version.
//!
//! Line layout, in order:
//!
//! ```text
//! {"t":"flightmeta","schema_version":1,"reason":"...","shard_count":4,
//!  "capacity":64,"recorded":9000}
//! {"t":"flightshard","slot":0,"dropped":12}
//! {"t":"flight","slot":0,"stamp":...,"time":...,"target":...,
//!  "kind":"msg"|"timer","a":...,"b":...}
//! ...
//! ```
//!
//! Slots follow the recorder's layout: `0..shard_count` are the shards,
//! `shard_count` is the global pseudo-shard (injectors, the sink driver).

use crate::json::{Json, JsonError};
use std::fmt;
use wsn_sim::{FlightRecorder, TraceKind};

/// Version stamp written into every dump's `flightmeta` line. Bump when
/// the line layout changes; the parser refuses other versions.
pub const FLIGHT_SCHEMA_VERSION: u64 = 1;

/// One retained dispatch, as serialized (mirrors `wsn_sim::FlightRec`
/// plus the slot it was retained on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightDumpRec {
    /// Canonical dispatch index within the run.
    pub stamp: u64,
    /// Dispatch instant in ticks.
    pub time: u64,
    /// Receiving actor.
    pub target: u64,
    /// Message or timer.
    pub kind: TraceKind,
    /// Sender (messages) — unused for timers.
    pub a: u64,
    /// Payload discriminant (messages) or tag (timers).
    pub b: u64,
}

/// One slot's retained window: drop count plus the surviving records in
/// stamp order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlightShard {
    /// Dispatches overwritten or discarded on this slot.
    pub dropped: u64,
    /// Retained dispatches, oldest first.
    pub records: Vec<FlightDumpRec>,
}

/// A complete flight dump: metadata plus one [`FlightShard`] per slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Schema version (see [`FLIGHT_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Why the dump was taken (`panic`, `perf-gate`, `chaos-wrong`,
    /// `demo`, ...).
    pub reason: String,
    /// Shards in the run (slots are `shard_count + 1`, global last).
    pub shard_count: u32,
    /// Ring capacity per slot at record time.
    pub capacity: u64,
    /// Total dispatches stamped by the recorder.
    pub recorded: u64,
    /// Per-slot windows, slot order (global pseudo-shard last).
    pub shards: Vec<FlightShard>,
}

/// Failure to parse a flight dump, with the 1-based offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong on that line.
    pub message: String,
}

impl fmt::Display for FlightParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flight dump line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FlightParseError {}

impl FlightDump {
    /// Snapshots a recorder into a dump tagged with `reason`.
    pub fn from_recorder(rec: &FlightRecorder, reason: &str) -> Self {
        let shards = (0..rec.slot_count())
            .map(|slot| FlightShard {
                dropped: rec.dropped(slot),
                records: rec
                    .snapshot(slot)
                    .iter()
                    .map(|r| FlightDumpRec {
                        stamp: r.stamp,
                        time: r.time.ticks(),
                        target: r.target as u64,
                        kind: r.kind,
                        a: r.a as u64,
                        b: r.b,
                    })
                    .collect(),
            })
            .collect();
        FlightDump {
            schema_version: FLIGHT_SCHEMA_VERSION,
            reason: reason.to_string(),
            shard_count: rec.shard_count(),
            capacity: rec.capacity() as u64,
            recorded: rec.recorded(),
            shards,
        }
    }

    /// Human-readable slot label: the shard number, or `global` for the
    /// pseudo-shard slot.
    pub fn slot_label(&self, slot: usize) -> String {
        if slot == self.shard_count as usize {
            "global".to_string()
        } else {
            slot.to_string()
        }
    }

    /// All records across slots, merged into canonical stamp order (what
    /// a waterfall renders).
    pub fn merged_records(&self) -> Vec<(usize, FlightDumpRec)> {
        let mut all: Vec<(usize, FlightDumpRec)> = self
            .shards
            .iter()
            .enumerate()
            .flat_map(|(slot, s)| s.records.iter().map(move |&r| (slot, r)))
            .collect();
        all.sort_by_key(|(_, r)| r.stamp);
        all
    }

    /// Renders the merged record stream as a per-dispatch waterfall (the
    /// `netscope flight` output): one line per retained dispatch in
    /// canonical stamp order, with a time-scaled position marker
    /// `width` characters wide.
    pub fn render_waterfall(&self, width: usize) -> String {
        let width = width.max(8);
        let dropped: u64 = self.shards.iter().map(|s| s.dropped).sum();
        let mut out = format!(
            "flight dump: reason {:?}, {} shard(s) + global, capacity {}, {} stamped, \
             {} retained, {} dropped\n",
            self.reason,
            self.shard_count,
            self.capacity,
            self.recorded,
            self.shards.iter().map(|s| s.records.len()).sum::<usize>(),
            dropped,
        );
        let merged = self.merged_records();
        if merged.is_empty() {
            out.push_str("(no retained dispatches)\n");
            return out;
        }
        let lo = merged.iter().map(|(_, r)| r.time).min().unwrap_or(0);
        let hi = merged.iter().map(|(_, r)| r.time).max().unwrap_or(0);
        let span = (hi - lo).max(1);
        out.push_str(&format!(
            "{:>7} {:>7} {:<7} {:>6} {:>7} {:>7} {:>7}  ticks {lo}..{hi}\n",
            "stamp", "time", "slot", "kind", "target", "a", "b"
        ));
        for (slot, rec) in &merged {
            let pos = ((rec.time - lo) * (width as u64 - 1) / span) as usize;
            let bar: String = (0..width)
                .map(|i| if i == pos { '#' } else { '-' })
                .collect();
            let kind = match rec.kind {
                TraceKind::Message => "msg",
                TraceKind::Timer => "timer",
            };
            out.push_str(&format!(
                "{:>7} {:>7} {:<7} {:>6} {:>7} {:>7} {:>7}  |{bar}|\n",
                rec.stamp,
                rec.time,
                self.slot_label(*slot),
                kind,
                rec.target,
                rec.a,
                rec.b,
            ));
        }
        out
    }

    /// Serializes the dump to JSON Lines (see the module docs for the
    /// line layout).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        push_line(
            &mut out,
            Json::Obj(vec![
                ("t".to_string(), Json::Str("flightmeta".to_string())),
                (
                    "schema_version".to_string(),
                    Json::from_u64(self.schema_version),
                ),
                ("reason".to_string(), Json::Str(self.reason.clone())),
                (
                    "shard_count".to_string(),
                    Json::from_u64(u64::from(self.shard_count)),
                ),
                ("capacity".to_string(), Json::from_u64(self.capacity)),
                ("recorded".to_string(), Json::from_u64(self.recorded)),
            ]),
        );
        for (slot, shard) in self.shards.iter().enumerate() {
            push_line(
                &mut out,
                Json::Obj(vec![
                    ("t".to_string(), Json::Str("flightshard".to_string())),
                    ("slot".to_string(), Json::from_u64(slot as u64)),
                    ("dropped".to_string(), Json::from_u64(shard.dropped)),
                ]),
            );
            for rec in &shard.records {
                let kind = match rec.kind {
                    TraceKind::Message => "msg",
                    TraceKind::Timer => "timer",
                };
                push_line(
                    &mut out,
                    Json::Obj(vec![
                        ("t".to_string(), Json::Str("flight".to_string())),
                        ("slot".to_string(), Json::from_u64(slot as u64)),
                        ("stamp".to_string(), Json::from_u64(rec.stamp)),
                        ("time".to_string(), Json::from_u64(rec.time)),
                        ("target".to_string(), Json::from_u64(rec.target)),
                        ("kind".to_string(), Json::Str(kind.to_string())),
                        ("a".to_string(), Json::from_u64(rec.a)),
                        ("b".to_string(), Json::from_u64(rec.b)),
                    ]),
                );
            }
        }
        out
    }

    /// Parses a JSON Lines flight dump. Blank lines are skipped; an
    /// unknown tag or schema version is an error.
    pub fn from_jsonl(text: &str) -> Result<Self, FlightParseError> {
        let mut dump: Option<FlightDump> = None;
        for (idx, line) in text.lines().enumerate() {
            let line_no = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e: JsonError| FlightParseError {
                line: line_no,
                message: e.to_string(),
            })?;
            let fail = |message: &str| FlightParseError {
                line: line_no,
                message: message.to_string(),
            };
            let tag = v
                .get("t")
                .and_then(Json::as_str)
                .ok_or_else(|| fail("missing record tag \"t\""))?;
            match tag {
                "flightmeta" => {
                    let version = v
                        .get("schema_version")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fail("flightmeta without schema_version"))?;
                    if version != FLIGHT_SCHEMA_VERSION {
                        return Err(fail(&format!(
                            "unsupported flight schema version {version} \
                             (this build reads {FLIGHT_SCHEMA_VERSION})"
                        )));
                    }
                    let shard_count = v
                        .get("shard_count")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fail("flightmeta without shard_count"))?;
                    dump = Some(FlightDump {
                        schema_version: version,
                        reason: v
                            .get("reason")
                            .and_then(Json::as_str)
                            .unwrap_or("")
                            .to_string(),
                        shard_count: shard_count as u32,
                        capacity: v.get("capacity").and_then(Json::as_u64).unwrap_or(0),
                        recorded: v.get("recorded").and_then(Json::as_u64).unwrap_or(0),
                        shards: vec![FlightShard::default(); shard_count as usize + 1],
                    });
                }
                "flightshard" => {
                    let dump = dump
                        .as_mut()
                        .ok_or_else(|| fail("flightshard before flightmeta"))?;
                    let slot = v
                        .get("slot")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fail("flightshard without slot"))?
                        as usize;
                    let shard = dump
                        .shards
                        .get_mut(slot)
                        .ok_or_else(|| fail("flightshard slot out of range"))?;
                    shard.dropped = v.get("dropped").and_then(Json::as_u64).unwrap_or(0);
                }
                "flight" => {
                    let dump = dump
                        .as_mut()
                        .ok_or_else(|| fail("flight record before flightmeta"))?;
                    let slot = v
                        .get("slot")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fail("flight record without slot"))?
                        as usize;
                    let kind = match v.get("kind").and_then(Json::as_str) {
                        Some("msg") => TraceKind::Message,
                        Some("timer") => TraceKind::Timer,
                        _ => return Err(fail("flight record with unknown kind")),
                    };
                    let field = |name: &str| {
                        v.get(name)
                            .and_then(Json::as_u64)
                            .ok_or_else(|| fail(&format!("flight record without {name}")))
                    };
                    let rec = FlightDumpRec {
                        stamp: field("stamp")?,
                        time: field("time")?,
                        target: field("target")?,
                        kind,
                        a: field("a")?,
                        b: field("b")?,
                    };
                    dump.shards
                        .get_mut(slot)
                        .ok_or_else(|| fail("flight record slot out of range"))?
                        .records
                        .push(rec);
                }
                other => return Err(fail(&format!("unknown record tag {other:?}"))),
            }
        }
        dump.ok_or(FlightParseError {
            line: 0,
            message: "no flightmeta line".to_string(),
        })
    }
}

fn push_line(out: &mut String, v: Json) {
    out.push_str(&v.render());
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_sim::{SimTime, TraceEntry};

    fn recorder_with_traffic() -> FlightRecorder {
        let mut rec = FlightRecorder::new(vec![0, 1, 0, 1], 2, 3);
        for t in 0..10u64 {
            rec.record(&TraceEntry {
                time: SimTime::from_ticks(t),
                target: (t % 5) as usize, // actor 4 is unmapped: global slot
                kind: if t % 2 == 0 {
                    TraceKind::Message
                } else {
                    TraceKind::Timer
                },
                a: 1,
                b: t,
            });
        }
        rec
    }

    #[test]
    fn dump_round_trips_through_jsonl() {
        let dump = FlightDump::from_recorder(&recorder_with_traffic(), "perf-gate");
        let text = dump.to_jsonl();
        let parsed = FlightDump::from_jsonl(&text).unwrap();
        assert_eq!(parsed, dump);
        // Serialize → parse → serialize is a fixed point.
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn empty_dump_round_trips() {
        let rec = FlightRecorder::new(vec![0], 1, 4);
        let dump = FlightDump::from_recorder(&rec, "panic");
        assert_eq!(dump.recorded, 0);
        assert!(dump.shards.iter().all(|s| s.records.is_empty()));
        let parsed = FlightDump::from_jsonl(&dump.to_jsonl()).unwrap();
        assert_eq!(parsed, dump);
        assert!(parsed.merged_records().is_empty());
    }

    #[test]
    fn merged_records_are_in_stamp_order() {
        let dump = FlightDump::from_recorder(&recorder_with_traffic(), "demo");
        let merged = dump.merged_records();
        assert!(!merged.is_empty());
        assert!(merged.windows(2).all(|w| w[0].1.stamp < w[1].1.stamp));
        // Slots agree with the recorder's actor map (targets 0,2 -> slot
        // 0; 1,3 -> slot 1; 4 -> global slot 2).
        for (slot, rec) in &merged {
            let expect = match rec.target {
                0 | 2 => 0,
                1 | 3 => 1,
                _ => 2,
            };
            assert_eq!(*slot, expect);
        }
    }

    #[test]
    fn slot_labels_name_the_global_slot() {
        let dump = FlightDump::from_recorder(&recorder_with_traffic(), "demo");
        assert_eq!(dump.slot_label(0), "0");
        assert_eq!(dump.slot_label(1), "1");
        assert_eq!(dump.slot_label(2), "global");
    }

    #[test]
    fn unknown_schema_version_is_refused() {
        let dump = FlightDump::from_recorder(&recorder_with_traffic(), "x");
        let text = dump
            .to_jsonl()
            .replacen("\"schema_version\":1", "\"schema_version\":99", 1);
        let err = FlightDump::from_jsonl(&text).unwrap_err();
        assert!(err.message.contains("unsupported flight schema version 99"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn malformed_dumps_are_rejected_with_line_numbers() {
        for (text, needle) in [
            ("", "no flightmeta"),
            ("{\"t\":\"flight\",\"slot\":0}", "before flightmeta"),
            ("{\"no_tag\":1}", "missing record tag"),
            ("{\"t\":\"bogus\"}", "unknown record tag"),
            ("{\"t\":\"flightmeta\",\"shard_count\":1}", "schema_version"),
        ] {
            let err = FlightDump::from_jsonl(text).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{text:?} gave {:?}",
                err.message
            );
        }
    }

    #[test]
    fn waterfall_renders_every_retained_dispatch_in_stamp_order() {
        let dump = FlightDump::from_recorder(&recorder_with_traffic(), "demo");
        let text = dump.render_waterfall(16);
        assert!(text.contains("reason \"demo\""), "{text}");
        let body: Vec<&str> = text.lines().skip(2).collect();
        assert_eq!(body.len(), dump.merged_records().len());
        assert!(body.iter().all(|l| l.contains('#')), "{text}");
        // Empty dumps render a placeholder, not a panic.
        let empty = FlightDump::from_recorder(&FlightRecorder::new(vec![0], 1, 4), "x");
        assert!(empty.render_waterfall(16).contains("no retained"),);
    }

    #[test]
    fn dropped_counts_survive_round_trip() {
        let dump = FlightDump::from_recorder(&recorder_with_traffic(), "demo");
        // Slot 0 saw targets 0 and 2 (stamps 0,2,5,7): 4 records in a
        // cap-3 ring drops 1.
        assert_eq!(dump.shards[0].dropped, 1);
        assert_eq!(dump.shards[0].records.len(), 3);
        let stamps: Vec<u64> = dump.shards[0].records.iter().map(|r| r.stamp).collect();
        assert_eq!(stamps, vec![2, 5, 7]);
        let parsed = FlightDump::from_jsonl(&dump.to_jsonl()).unwrap();
        assert_eq!(parsed.shards[0].dropped, 1);
    }
}
