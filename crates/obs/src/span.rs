//! Phase-scoped spans recorded into a tree.
//!
//! A [`SpanRecorder`] tracks a stack of open spans in simulated time:
//! the runtime driver opens a span when it starts a phase
//! (topology-emulation, binding, application, a quadtree merge level, …)
//! and closes it when the kernel reaches quiescence, attaching the number
//! of kernel events dispatched inside the phase. Closed spans nest under
//! their parent, so the finished recorder holds a forest of [`SpanNode`]s
//! mirroring the phase structure of the run.
//!
//! Spans compare with `==` (times are deterministic `SimTime`s), which is
//! what the determinism suite uses to assert two same-seed runs produce
//! identical trees.

use wsn_sim::SimTime;

/// One closed span: a named interval of simulated time with child spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Phase name, e.g. `"topology-emulation"` or `"merge-level-2"`.
    pub name: String,
    /// Simulated time when the span opened.
    pub start: SimTime,
    /// Simulated time when the span closed.
    pub end: SimTime,
    /// Kernel events dispatched while the span was open (0 if unknown).
    pub events: u64,
    /// Child spans, in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A childless span.
    pub fn leaf(name: impl Into<String>, start: SimTime, end: SimTime, events: u64) -> Self {
        SpanNode {
            name: name.into(),
            start,
            end,
            events,
            children: Vec::new(),
        }
    }

    /// Span length in ticks.
    pub fn duration_ticks(&self) -> u64 {
        self.end - self.start
    }

    /// Total spans in this subtree, including `self`.
    pub fn subtree_len(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::subtree_len)
            .sum::<usize>()
    }
}

/// Records spans via an open/close stack; see the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanRecorder {
    roots: Vec<SpanNode>,
    stack: Vec<SpanNode>,
}

impl SpanRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        SpanRecorder::default()
    }

    /// Opens a span at `now`; it stays open until [`close`](Self::close).
    pub fn open(&mut self, name: impl Into<String>, now: SimTime) {
        self.stack.push(SpanNode::leaf(name, now, now, 0));
    }

    /// Closes the innermost open span at `now`, attributing `events`
    /// kernel events to it. Returns false if no span was open.
    pub fn close(&mut self, now: SimTime, events: u64) -> bool {
        let Some(mut span) = self.stack.pop() else {
            return false;
        };
        span.end = now;
        span.events = events;
        self.attach(span);
        true
    }

    /// Attaches an externally built span (e.g. reconstructed merge
    /// levels) under the innermost open span, or as a root.
    pub fn attach(&mut self, span: SpanNode) {
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(span),
            None => self.roots.push(span),
        }
    }

    /// Number of spans still open.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// The finished span forest (open spans are not included).
    pub fn roots(&self) -> &[SpanNode] {
        &self.roots
    }

    /// Consumes the recorder, returning the finished forest.
    pub fn into_roots(self) -> Vec<SpanNode> {
        self.roots
    }

    /// Renders the forest as an ASCII tree with durations, event counts,
    /// and each span's share of its root's duration.
    pub fn render(&self) -> String {
        render_span_forest(&self.roots)
    }
}

/// Renders a span forest as an ASCII tree.
pub fn render_span_forest(roots: &[SpanNode]) -> String {
    let mut out = String::new();
    for root in roots {
        render_node(root, "", true, true, root.duration_ticks(), &mut out);
    }
    out
}

fn render_node(
    node: &SpanNode,
    prefix: &str,
    is_last: bool,
    is_root: bool,
    root_ticks: u64,
    out: &mut String,
) {
    let connector = if is_root {
        String::new()
    } else if is_last {
        format!("{prefix}└─ ")
    } else {
        format!("{prefix}├─ ")
    };
    // A zero-duration root is a degenerate point interval: everything in
    // the tree covers all of it, so report 100% rather than 0/0 noise.
    let share = if root_ticks == 0 {
        100.0
    } else {
        100.0 * node.duration_ticks() as f64 / root_ticks as f64
    };
    let label = format!("{connector}{}", node.name);
    out.push_str(&format!(
        "{label:<42} {}..{}  {:>6} ticks  {:>8} events  {share:>5.1}%\n",
        node.start,
        node.end,
        node.duration_ticks(),
        node.events,
    ));
    let child_prefix = if is_root {
        String::new()
    } else if is_last {
        format!("{prefix}   ")
    } else {
        format!("{prefix}│  ")
    };
    for (i, child) in node.children.iter().enumerate() {
        let last = i + 1 == node.children.len();
        render_node(child, &child_prefix, last, false, root_ticks, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    #[test]
    fn nesting_follows_open_close_order() {
        let mut rec = SpanRecorder::new();
        rec.open("mission", t(0));
        rec.open("topology-emulation", t(0));
        rec.close(t(10), 100);
        rec.open("binding", t(10));
        rec.open("election", t(10));
        rec.close(t(14), 40);
        rec.close(t(20), 60);
        rec.close(t(30), 200);
        assert_eq!(rec.open_depth(), 0);

        let roots = rec.roots();
        assert_eq!(roots.len(), 1);
        let mission = &roots[0];
        assert_eq!(mission.name, "mission");
        assert_eq!(mission.duration_ticks(), 30);
        assert_eq!(mission.events, 200);
        assert_eq!(mission.children.len(), 2);
        assert_eq!(mission.children[0].name, "topology-emulation");
        assert_eq!(mission.children[1].name, "binding");
        assert_eq!(mission.children[1].children[0].name, "election");
        assert_eq!(mission.subtree_len(), 4);
    }

    #[test]
    fn close_without_open_is_reported() {
        let mut rec = SpanRecorder::new();
        assert!(!rec.close(t(5), 0));
        rec.open("a", t(0));
        assert!(rec.close(t(1), 1));
        assert!(!rec.close(t(2), 0));
    }

    #[test]
    fn attach_adds_subtrees_under_open_span() {
        let mut rec = SpanRecorder::new();
        rec.open("application", t(0));
        rec.attach(SpanNode::leaf("merge-level-1", t(2), t(5), 12));
        rec.close(t(9), 50);
        assert_eq!(rec.roots()[0].children[0].name, "merge-level-1");

        // With nothing open, attach creates a new root.
        rec.attach(SpanNode::leaf("loose", t(9), t(10), 0));
        assert_eq!(rec.roots().len(), 2);
    }

    #[test]
    fn zero_duration_spans_render_finite_shares() {
        let mut rec = SpanRecorder::new();
        rec.open("instant", t(7));
        rec.open("sub-instant", t(7));
        rec.close(t(7), 0);
        rec.close(t(7), 3);
        let text = rec.render();
        // A point interval is 100% of itself, never NaN or 0/0.
        assert!(!text.contains("NaN"), "{text}");
        assert_eq!(text.matches("100.0%").count(), 2, "{text}");
        assert!(text.contains("0 ticks"), "{text}");
    }

    #[test]
    fn identical_sequences_produce_equal_trees() {
        let build = || {
            let mut rec = SpanRecorder::new();
            rec.open("a", t(0));
            rec.open("b", t(1));
            rec.close(t(3), 7);
            rec.close(t(4), 9);
            rec
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn render_contains_every_span_and_shares() {
        let mut rec = SpanRecorder::new();
        rec.open("mission", t(0));
        rec.open("topology-emulation", t(0));
        rec.close(t(25), 10);
        rec.open("binding", t(25));
        rec.close(t(100), 20);
        rec.close(t(100), 30);
        let text = rec.render();
        assert!(text.contains("mission"));
        assert!(text.contains("topology-emulation"));
        assert!(text.contains("binding"));
        assert!(text.contains("25.0%"));
        assert!(text.contains("75.0%"));
        assert!(text.contains("100.0%"));
    }
}
