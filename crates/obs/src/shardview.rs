//! Per-shard telemetry view — the table behind `netscope shards`.
//!
//! A shard-metrics trace (recorded by `wsn-lint --record-shard-metrics-trace`
//! or `netscope shards --demo`) carries the engine's per-shard accounting as
//! `shard=`-labeled registry series. [`shard_table`] folds those series back
//! into one row per shard — events dispatched, cross-shard traffic staged and
//! applied at the epoch barrier, the barrier-stall proxy, and the lane queue
//! depths — plus the reconciliation verdict the TC010 conformance check
//! automates: the per-shard event counters must sum to the kernel's own
//! dispatch total for the run.

use crate::registry::split_labels;
use crate::trace::TraceDocument;

/// One shard's (or the global pseudo-shard's) accumulated telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRow {
    /// Shard label: `"0"`..`"N-1"`, or `"global"` for events dispatched on
    /// actors outside every shard (the root pseudo-shard).
    pub label: String,
    /// Events dispatched on this shard's lane.
    pub events: u64,
    /// Cross-shard events staged at this shard's outbox. Always 0 for the
    /// global pseudo-shard (it has no outbox; the row renders `-`).
    pub staged: u64,
    /// Cross-shard events applied into this shard at the barrier.
    pub applied: u64,
    /// Barrier-stall proxy: events this shard waited on the per-window
    /// straggler for, summed over all windows.
    pub stall: u64,
    /// Peak lane queue depth over the run.
    pub depth_max: f64,
    /// Mean lane queue depth over the run's windows.
    pub depth_mean: f64,
}

/// The decoded per-shard view of one shard-metrics trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTable {
    /// Shard count the engine ran with (`shard.count` gauge).
    pub shard_count: u64,
    /// Barrier windows executed (`shard.windows`).
    pub windows: u64,
    /// The kernel's own dispatch total (`shard.events.total`) — counted
    /// independently of the per-shard series, which is what makes the
    /// reconciliation below meaningful.
    pub total: u64,
    /// Per-shard rows, shards in numeric order, the global pseudo-shard
    /// last.
    pub rows: Vec<ShardRow>,
    /// `true` when the per-shard event counters sum to [`ShardTable::total`]
    /// and staged cross-shard traffic balances applied.
    pub reconciled: bool,
    /// Utilization skew: max over mean of the per-shard event counts
    /// (global excluded). `1.0` is a perfectly balanced run.
    pub skew: f64,
}

/// Decodes the `shard=`-labeled series of `doc` into a [`ShardTable`].
/// Errors when the trace carries no shard telemetry at all.
pub fn shard_table(doc: &TraceDocument) -> Result<ShardTable, String> {
    if !doc.counters.iter().any(|(k, _)| k == "shard.events.total") {
        return Err(
            "trace carries no shard telemetry (no shard.events.total counter); record one \
             with wsn-lint --record-shard-metrics-trace or netscope shards --demo"
                .to_string(),
        );
    }
    let total = doc.counter("shard.events.total");
    let windows = doc.counter("shard.windows");
    let shard_count = doc
        .gauges
        .iter()
        .find(|(k, _)| k == "shard.count")
        .map(|&(_, v)| v as u64)
        .ok_or("trace has shard counters but no shard.count gauge")?;

    let counter_series = |metric: &str, shard: &str| -> u64 {
        doc.counters
            .iter()
            .find(|(k, _)| {
                let (name, labels) = split_labels(k);
                name == metric && labels == [("shard", shard)]
            })
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let gauge_series = |metric: &str, shard: &str| -> f64 {
        doc.gauges
            .iter()
            .find(|(k, _)| {
                let (name, labels) = split_labels(k);
                name == metric && labels == [("shard", shard)]
            })
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    };

    let mut labels: Vec<String> = (0..shard_count).map(|s| s.to_string()).collect();
    labels.push("global".to_string());
    let rows: Vec<ShardRow> = labels
        .iter()
        .map(|l| ShardRow {
            label: l.clone(),
            events: counter_series("shard.events", l),
            staged: counter_series("shard.cross.staged", l),
            applied: counter_series("shard.cross.applied", l),
            stall: counter_series("shard.barrier.stall", l),
            depth_max: gauge_series("shard.queue.depth.max", l),
            depth_mean: gauge_series("shard.queue.depth.mean", l),
        })
        .collect();

    let events_sum: u64 = rows.iter().map(|r| r.events).sum();
    let staged_sum: u64 = rows.iter().map(|r| r.staged).sum();
    let applied_sum: u64 = rows.iter().map(|r| r.applied).sum();
    let shard_events: Vec<u64> = rows[..shard_count as usize]
        .iter()
        .map(|r| r.events)
        .collect();
    let mean = shard_events.iter().sum::<u64>() as f64 / (shard_events.len().max(1)) as f64;
    let skew = if mean > 0.0 {
        shard_events.iter().copied().max().unwrap_or(0) as f64 / mean
    } else {
        1.0
    };
    Ok(ShardTable {
        shard_count,
        windows,
        total,
        rows,
        reconciled: events_sum == total && staged_sum == applied_sum,
        skew,
    })
}

impl ShardTable {
    /// Renders the per-shard table with the reconciliation verdict — the
    /// `netscope shards` output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "shard telemetry: {} shard(s), {} barrier window(s), {} events dispatched\n",
            self.shard_count, self.windows, self.total
        );
        out.push_str(&format!(
            "{:<8} {:>8} {:>7} {:>8} {:>8} {:>8} {:>10} {:>11}\n",
            "shard", "events", "share%", "staged", "applied", "stall", "depth.max", "depth.mean"
        ));
        for row in &self.rows {
            let share = 100.0 * row.events as f64 / self.total.max(1) as f64;
            if row.label == "global" {
                out.push_str(&format!(
                    "{:<8} {:>8} {:>6.1}% {:>8} {:>8} {:>8} {:>10.1} {:>11.2}\n",
                    row.label, row.events, share, "-", "-", "-", row.depth_max, row.depth_mean
                ));
            } else {
                out.push_str(&format!(
                    "{:<8} {:>8} {:>6.1}% {:>8} {:>8} {:>8} {:>10.1} {:>11.2}\n",
                    row.label,
                    row.events,
                    share,
                    row.staged,
                    row.applied,
                    row.stall,
                    row.depth_max,
                    row.depth_mean
                ));
            }
        }
        out.push_str(&format!("utilization skew (max/mean): {:.2}x\n", self.skew));
        let events_sum: u64 = self.rows.iter().map(|r| r.events).sum();
        if self.reconciled {
            out.push_str(&format!(
                "reconciliation: per-shard sum {events_sum} == kernel total {} — reconciled\n",
                self.total
            ));
        } else {
            out.push_str(&format!(
                "reconciliation: MISMATCH — per-shard sum {events_sum} vs kernel total {} \
                 (see wsn-lint --shard-metrics / TC010)\n",
                self.total
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::labeled;

    fn doc_with(counters: Vec<(&str, u64)>, gauges: Vec<(&str, f64)>) -> TraceDocument {
        TraceDocument {
            counters: counters
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            ..TraceDocument::default()
        }
    }

    fn balanced_doc() -> TraceDocument {
        doc_with(
            vec![
                ("shard.events.total", 100),
                ("shard.windows", 6),
                (&labeled("shard.events", &[("shard", "0")]), 40),
                (&labeled("shard.events", &[("shard", "1")]), 50),
                (&labeled("shard.events", &[("shard", "global")]), 10),
                (&labeled("shard.cross.staged", &[("shard", "0")]), 3),
                (&labeled("shard.cross.applied", &[("shard", "1")]), 3),
                (&labeled("shard.barrier.stall", &[("shard", "0")]), 7),
            ],
            vec![
                ("shard.count", 2.0),
                (&labeled("shard.queue.depth.max", &[("shard", "0")]), 4.0),
                (&labeled("shard.queue.depth.mean", &[("shard", "0")]), 1.5),
            ],
        )
    }

    #[test]
    fn balanced_trace_reconciles_and_renders_every_row() {
        let table = shard_table(&balanced_doc()).unwrap();
        assert!(table.reconciled);
        assert_eq!(table.shard_count, 2);
        assert_eq!(table.rows.len(), 3);
        assert_eq!(table.rows[2].label, "global");
        assert!((table.skew - 50.0 / 45.0).abs() < 1e-9);
        let text = table.render();
        assert!(
            text.contains("2 shard(s), 6 barrier window(s), 100 events"),
            "{text}"
        );
        assert!(text.contains("— reconciled"), "{text}");
        // The global pseudo-shard has no cross-shard columns.
        assert!(
            text.lines()
                .any(|l| l.starts_with("global") && l.contains('-')),
            "{text}"
        );
    }

    #[test]
    fn undercounted_trace_reports_a_mismatch() {
        let mut doc = balanced_doc();
        for (k, v) in &mut doc.counters {
            if k == &labeled("shard.events", &[("shard", "0")]) {
                *v -= 1;
            }
        }
        let table = shard_table(&doc).unwrap();
        assert!(!table.reconciled);
        assert!(table.render().contains("MISMATCH"), "{}", table.render());
    }

    #[test]
    fn unbalanced_cross_traffic_also_breaks_reconciliation() {
        let mut doc = balanced_doc();
        doc.counters
            .push((labeled("shard.cross.staged", &[("shard", "1")]), 2));
        assert!(!shard_table(&doc).unwrap().reconciled);
    }

    #[test]
    fn traces_without_shard_telemetry_are_refused() {
        let doc = doc_with(vec![("net.messages", 5)], vec![]);
        let err = shard_table(&doc).unwrap_err();
        assert!(err.contains("no shard telemetry"), "{err}");
    }
}
