//! Collective computation primitives on the virtual architecture.
//!
//! §2: "Computation primitives could include summing, sorting, or ranking
//! a set of data values from a set of sensor nodes" (citing Bhuvaneswaran
//! et al.'s fundamental protocols). This module provides three such
//! primitives as ordinary [`NodeProgram`]s over the grid and its group
//! hierarchy, so they run on the VM and on the physical runtime like any
//! application:
//!
//! * [`ReduceProgram`] — hierarchical reduction (sum/min/max/count) up the
//!   leader quad-tree; the root exfiltrates the aggregate. Ranking a query
//!   value is a reduction of an indicator (see [`ReduceProgram::rank`]).
//! * [`DisseminateProgram`] — the inverse: the root's value flows down the
//!   hierarchy until every node holds it; leaves exfiltrate receipt.
//! * [`SortProgram`] — odd-even transposition sort along the grid's
//!   boustrophedon (snake) order: neighbors exchange values in alternating
//!   pair phases until, after N phases, node `i` of the linear order holds
//!   the i-th smallest value. Purely message-driven — no global
//!   synchronizer — with out-of-order phase messages buffered, which is
//!   how a BSP-style algorithm is expressed in the architecture's
//!   asynchronous model (§2's "combination of the two").

use crate::grid::{GridCoord, VirtualGrid};
use crate::groups::Hierarchy;
use crate::program::{NodeApi, NodeProgram};
use std::collections::HashMap;
use wsn_sim::Payload;

/// Messages of the collective primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum CollectiveMsg {
    /// Partial aggregate flowing toward the root.
    Reduce {
        /// Hierarchy level this partial merges at.
        level: u8,
        /// Aggregated value.
        value: f64,
        /// Number of readings aggregated.
        count: u64,
    },
    /// The root's value flowing down the hierarchy.
    Disseminate {
        /// Hierarchy level of the *sender* (receivers re-fan-out below).
        level: u8,
        /// The disseminated value.
        value: f64,
    },
    /// One odd-even transposition exchange.
    Sort {
        /// Phase number of the exchange.
        phase: u32,
        /// The sender's current value.
        value: f64,
    },
}

impl Payload for CollectiveMsg {
    fn discriminant(&self) -> u64 {
        match self {
            CollectiveMsg::Reduce { .. } => 1,
            CollectiveMsg::Disseminate { .. } => 2,
            CollectiveMsg::Sort { .. } => 3,
        }
    }
}

/// The associative operation of a reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Σ of readings.
    Sum,
    /// Minimum reading.
    Min,
    /// Maximum reading.
    Max,
}

impl ReduceOp {
    fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// What each node contributes to a reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReduceSource {
    /// The (transformed) sensor reading.
    Sensor,
    /// The node's residual energy budget (§3.1's resource-management
    /// query); contributes +∞ on platforms without budgets so a Min
    /// reduction still finds the weakest budgeted node.
    ResidualEnergy,
}

/// Hierarchical reduce: every node contributes its (transformed) reading;
/// level-k leaders combine their quadrant's four partials and pass the
/// result up; the root exfiltrates `Reduce { value, count }`.
pub struct ReduceProgram {
    op: ReduceOp,
    source: ReduceSource,
    /// Maps the raw reading to the contributed value (identity for plain
    /// aggregates; an indicator for ranking).
    transform: Box<dyn Fn(f64) -> f64>,
    hierarchy: Hierarchy,
    partial: Vec<(f64, u64, u8)>, // (value, count, seen) per level
}

impl ReduceProgram {
    /// A reduction of the raw readings under `op`.
    pub fn new(side: u32, op: ReduceOp) -> Self {
        Self::with_transform(side, op, |x| x)
    }

    /// A reduction of `transform(reading)` under `op`.
    pub fn with_transform(
        side: u32,
        op: ReduceOp,
        transform: impl Fn(f64) -> f64 + 'static,
    ) -> Self {
        let hierarchy = Hierarchy::new(side);
        let levels = hierarchy.max_level() as usize + 2;
        ReduceProgram {
            op,
            source: ReduceSource::Sensor,
            transform: Box::new(transform),
            hierarchy,
            partial: vec![(f64::NAN, 0, 0); levels],
        }
    }

    /// The resource-management query of §3.1: the minimum residual energy
    /// across the network (the weakest node's budget).
    pub fn min_residual_energy(side: u32) -> Self {
        let mut p = Self::new(side, ReduceOp::Min);
        p.source = ReduceSource::ResidualEnergy;
        p
    }

    /// The rank query of §2's "ranking" primitive: counts readings
    /// strictly below `query` (a Sum of indicators).
    pub fn rank(side: u32, query: f64) -> Self {
        Self::with_transform(side, ReduceOp::Sum, move |x| f64::from(x < query))
    }

    fn ship(&self, api: &mut dyn NodeApi<CollectiveMsg>, level: u8, value: f64, count: u64) {
        if level > self.hierarchy.max_level() {
            api.exfiltrate(CollectiveMsg::Reduce {
                level: self.hierarchy.max_level(),
                value,
                count,
            });
        } else {
            let dest = self.hierarchy.leader(api.coord(), level);
            api.send(
                dest,
                1,
                CollectiveMsg::Reduce {
                    level,
                    value,
                    count,
                },
            );
        }
    }

    fn absorb(&mut self, api: &mut dyn NodeApi<CollectiveMsg>, level: u8, value: f64, count: u64) {
        api.compute(1);
        let slot = &mut self.partial[level as usize];
        slot.0 = if slot.2 == 0 {
            value
        } else {
            self.op.combine(slot.0, value)
        };
        slot.1 += count;
        slot.2 += 1;
        if slot.2 == 4 {
            let (v, c, _) = *slot;
            self.ship(api, level + 1, v, c);
        }
    }
}

impl NodeProgram<CollectiveMsg> for ReduceProgram {
    fn on_init(&mut self, api: &mut dyn NodeApi<CollectiveMsg>) {
        let contribution = match self.source {
            ReduceSource::Sensor => (self.transform)(api.read_sensor()),
            ReduceSource::ResidualEnergy => api.residual_energy().unwrap_or(f64::INFINITY),
        };
        api.compute(1);
        if self.hierarchy.max_level() == 0 {
            api.exfiltrate(CollectiveMsg::Reduce {
                level: 0,
                value: contribution,
                count: 1,
            });
        } else {
            self.ship(api, 1, contribution, 1);
        }
    }

    fn on_receive(
        &mut self,
        api: &mut dyn NodeApi<CollectiveMsg>,
        _from: GridCoord,
        msg: CollectiveMsg,
    ) {
        match msg {
            CollectiveMsg::Reduce {
                level,
                value,
                count,
            } => self.absorb(api, level, value, count),
            other => panic!("reduce program received {other:?}"),
        }
    }
}

/// Hierarchical dissemination: the root injects a value that fans out
/// through the leader tree; every node exfiltrates on receipt (so the
/// harness can check full coverage).
pub struct DisseminateProgram {
    /// The value the root injects.
    root_value: f64,
    hierarchy: Hierarchy,
    delivered: bool,
}

impl DisseminateProgram {
    /// A disseminate program for one node; only the root's `root_value`
    /// matters.
    pub fn new(side: u32, root_value: f64) -> Self {
        DisseminateProgram {
            root_value,
            hierarchy: Hierarchy::new(side),
            delivered: false,
        }
    }

    fn fan_out(&mut self, api: &mut dyn NodeApi<CollectiveMsg>, my_level: u8, value: f64) {
        if self.delivered {
            return;
        }
        self.delivered = true;
        api.exfiltrate(CollectiveMsg::Disseminate { level: 0, value });
        // Re-fan-out to the three non-self children at every level this
        // node leads, top-down.
        let mut level = my_level;
        while level >= 1 {
            let children = self.hierarchy.children(api.coord(), level);
            for child in children {
                if child != api.coord() {
                    api.send(
                        child,
                        1,
                        CollectiveMsg::Disseminate {
                            level: level - 1,
                            value,
                        },
                    );
                }
            }
            level -= 1;
        }
    }
}

impl NodeProgram<CollectiveMsg> for DisseminateProgram {
    fn on_init(&mut self, api: &mut dyn NodeApi<CollectiveMsg>) {
        if api.coord() == GridCoord::new(0, 0) {
            let level = self.hierarchy.max_level();
            let value = self.root_value;
            self.fan_out(api, level, value);
        }
    }

    fn on_receive(
        &mut self,
        api: &mut dyn NodeApi<CollectiveMsg>,
        _from: GridCoord,
        msg: CollectiveMsg,
    ) {
        match msg {
            CollectiveMsg::Disseminate { level, value } => self.fan_out(api, level, value),
            other => panic!("disseminate program received {other:?}"),
        }
    }
}

/// Boustrophedon (snake) linear order over the grid: row-major with every
/// odd row reversed, so consecutive linear indices are grid neighbors.
pub fn snake_index(grid: VirtualGrid, c: GridCoord) -> usize {
    let side = grid.side();
    let row_base = c.row as usize * side as usize;
    if c.row.is_multiple_of(2) {
        row_base + c.col as usize
    } else {
        row_base + (side - 1 - c.col) as usize
    }
}

/// Inverse of [`snake_index`].
pub fn snake_coord(grid: VirtualGrid, index: usize) -> GridCoord {
    let side = grid.side() as usize;
    assert!(index < side * side, "snake index out of range");
    let row = index / side;
    let col = if row.is_multiple_of(2) {
        index % side
    } else {
        side - 1 - index % side
    };
    GridCoord::new(col as u32, row as u32)
}

/// Odd-even transposition sort along the snake order. After `N` phases,
/// node with linear index `i` holds the i-th smallest reading and
/// exfiltrates `Sort { phase: i, value }`.
pub struct SortProgram {
    grid: VirtualGrid,
    index: Option<usize>,
    value: f64,
    phase: u32,
    total_phases: u32,
    inbox: HashMap<u32, f64>,
    sent_phase: Option<u32>,
}

impl SortProgram {
    /// A sort program for one node of a `side × side` grid.
    pub fn new(side: u32) -> Self {
        let grid = VirtualGrid::new(side);
        SortProgram {
            grid,
            index: None,
            value: f64::NAN,
            phase: 0,
            total_phases: (grid.node_count()) as u32,
            inbox: HashMap::new(),
            sent_phase: None,
        }
    }

    fn partner(&self, phase: u32) -> Option<usize> {
        let i = self.index.expect("initialized");
        let n = self.grid.node_count();
        let partner = if phase.is_multiple_of(2) {
            // pairs (0,1), (2,3), …
            if i.is_multiple_of(2) {
                i + 1
            } else {
                i - 1
            }
        } else {
            // pairs (1,2), (3,4), …
            if i == 0 {
                return None;
            } else if !i.is_multiple_of(2) {
                i + 1
            } else {
                i - 1
            }
        };
        (partner < n).then_some(partner)
    }

    /// Drives phases forward as far as buffered messages allow.
    fn advance(&mut self, api: &mut dyn NodeApi<CollectiveMsg>) {
        let i = self.index.expect("initialized");
        while self.phase < self.total_phases {
            let Some(partner) = self.partner(self.phase) else {
                self.phase += 1;
                continue;
            };
            // Send my value for this phase exactly once.
            if self.sent_phase != Some(self.phase) {
                self.sent_phase = Some(self.phase);
                let dest = snake_coord(self.grid, partner);
                api.send(
                    dest,
                    1,
                    CollectiveMsg::Sort {
                        phase: self.phase,
                        value: self.value,
                    },
                );
            }
            let Some(theirs) = self.inbox.remove(&self.phase) else {
                return; // wait for the partner
            };
            api.compute(1);
            self.value = if i < partner {
                self.value.min(theirs)
            } else {
                self.value.max(theirs)
            };
            self.phase += 1;
        }
        api.exfiltrate(CollectiveMsg::Sort {
            phase: i as u32,
            value: self.value,
        });
    }
}

impl NodeProgram<CollectiveMsg> for SortProgram {
    fn on_init(&mut self, api: &mut dyn NodeApi<CollectiveMsg>) {
        self.index = Some(snake_index(self.grid, api.coord()));
        self.value = api.read_sensor();
        api.compute(1);
        self.advance(api);
    }

    fn on_receive(
        &mut self,
        api: &mut dyn NodeApi<CollectiveMsg>,
        _from: GridCoord,
        msg: CollectiveMsg,
    ) {
        match msg {
            CollectiveMsg::Sort { phase, value } => {
                let stale = self.inbox.insert(phase, value);
                debug_assert!(stale.is_none(), "duplicate phase {phase} message");
                self.advance(api);
            }
            other => panic!("sort program received {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::vm::Vm;

    fn run_reduce(side: u32, op: ReduceOp) -> (f64, u64) {
        let mut vm: Vm<CollectiveMsg> = Vm::new(
            side,
            CostModel::uniform(),
            1,
            |c| f64::from(c.col * 7 + c.row * 3),
            move |_| Box::new(ReduceProgram::new(side, op)),
        );
        vm.run();
        let ex = vm.take_exfiltrated();
        assert_eq!(ex.len(), 1);
        match ex.into_iter().next().unwrap().payload {
            CollectiveMsg::Reduce { value, count, .. } => (value, count),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sum_reduce_is_exact() {
        for side in [1u32, 2, 4, 8, 16] {
            let (value, count) = run_reduce(side, ReduceOp::Sum);
            let expect: f64 = (0..side)
                .flat_map(|r| (0..side).map(move |c| f64::from(c * 7 + r * 3)))
                .sum();
            assert_eq!(value, expect, "side {side}");
            assert_eq!(count, u64::from(side * side));
        }
    }

    #[test]
    fn min_max_reduce() {
        let (min, _) = run_reduce(8, ReduceOp::Min);
        let (max, _) = run_reduce(8, ReduceOp::Max);
        assert_eq!(min, 0.0);
        assert_eq!(max, f64::from(7 * 7 + 7 * 3));
    }

    #[test]
    fn rank_counts_strictly_below_query() {
        let side = 4u32;
        let mut vm: Vm<CollectiveMsg> = Vm::new(
            side,
            CostModel::uniform(),
            1,
            |c| f64::from(c.col + 4 * c.row), // readings 0..16, distinct
            move |_| Box::new(ReduceProgram::rank(side, 5.0)),
        );
        vm.run();
        match vm.take_exfiltrated().pop().unwrap().payload {
            CollectiveMsg::Reduce { value, .. } => assert_eq!(value, 5.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reduce_energy_matches_quadtree_estimate() {
        let side = 8u32;
        let mut vm: Vm<CollectiveMsg> = Vm::new(
            side,
            CostModel::uniform(),
            1,
            |_| 1.0,
            move |_| Box::new(ReduceProgram::new(side, ReduceOp::Sum)),
        );
        vm.run();
        let est = crate::estimate::quadtree_merge_estimate(
            side,
            &CostModel::uniform(),
            &|_| 1,
            &|_| 4, // absorb charges 1 per incoming ×4
            1,
        );
        assert!((vm.ledger().total() - est.total_energy).abs() < 1e-9);
    }

    #[test]
    fn dissemination_reaches_every_node() {
        for side in [1u32, 2, 4, 8] {
            let mut vm: Vm<CollectiveMsg> = Vm::new(
                side,
                CostModel::uniform(),
                1,
                |_| 0.0,
                move |_| Box::new(DisseminateProgram::new(side, 42.5)),
            );
            vm.run();
            let ex = vm.take_exfiltrated();
            assert_eq!(ex.len(), (side as usize).pow(2), "side {side}");
            for e in &ex {
                match e.payload {
                    CollectiveMsg::Disseminate { value, .. } => assert_eq!(value, 42.5),
                    ref other => panic!("{other:?}"),
                }
            }
            // Every node exfiltrated exactly once.
            let mut froms: Vec<GridCoord> = ex.iter().map(|e| e.from).collect();
            froms.sort();
            froms.dedup();
            assert_eq!(froms.len(), (side as usize).pow(2));
        }
    }

    #[test]
    fn snake_order_is_a_neighbor_path() {
        for side in [1u32, 2, 3, 4, 8] {
            let grid = VirtualGrid::new(side);
            let n = grid.node_count();
            let mut prev: Option<GridCoord> = None;
            for i in 0..n {
                let c = snake_coord(grid, i);
                assert_eq!(snake_index(grid, c), i);
                if let Some(p) = prev {
                    assert_eq!(p.manhattan(c), 1, "snake jump at {i} (side {side})");
                }
                prev = Some(c);
            }
        }
    }

    fn run_sort(side: u32, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = wsn_sim::DetRng::new(seed);
        let n = (side as usize).pow(2);
        let readings: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 100.0)).collect();
        let grid = VirtualGrid::new(side);
        let r = readings.clone();
        let mut vm: Vm<CollectiveMsg> = Vm::new(
            side,
            CostModel::uniform(),
            seed,
            move |c| r[grid.index(c)],
            move |_| Box::new(SortProgram::new(side)),
        );
        vm.run();
        let mut out = vec![f64::NAN; n];
        for e in vm.take_exfiltrated() {
            match e.payload {
                CollectiveMsg::Sort { phase, value } => out[phase as usize] = value,
                other => panic!("{other:?}"),
            }
        }
        (readings, out)
    }

    #[test]
    fn odd_even_transposition_sorts() {
        for (side, seed) in [(2u32, 1u64), (4, 2), (8, 3)] {
            let (mut input, output) = run_sort(side, seed);
            input.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(input, output, "side {side}");
        }
    }

    #[test]
    fn sort_of_presorted_input_is_stable_fixpoint() {
        let side = 4u32;
        let grid = VirtualGrid::new(side);
        let mut vm: Vm<CollectiveMsg> = Vm::new(
            side,
            CostModel::uniform(),
            1,
            move |c| snake_index(grid, c) as f64,
            move |_| Box::new(SortProgram::new(side)),
        );
        vm.run();
        for e in vm.take_exfiltrated() {
            match e.payload {
                CollectiveMsg::Sort { phase, value } => assert_eq!(value, f64::from(phase)),
                other => panic!("{other:?}"),
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::cost::CostModel;
    use crate::vm::Vm;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sorting any random multiset yields the sorted multiset.
        #[test]
        fn sort_correct_on_random_inputs(seed in 0u64..10_000, pow in 1u32..4) {
            let side = 1u32 << pow;
            let grid = VirtualGrid::new(side);
            let n = grid.node_count();
            let mut rng = wsn_sim::DetRng::new(seed);
            let readings: Vec<f64> = (0..n).map(|_| (rng.bounded_u64(50)) as f64).collect();
            let r = readings.clone();
            let mut vm: Vm<CollectiveMsg> = Vm::new(
                side,
                CostModel::uniform(),
                seed,
                move |c| r[grid.index(c)],
                move |_| Box::new(SortProgram::new(side)),
            );
            vm.run();
            let mut out = vec![f64::NAN; n];
            for e in vm.take_exfiltrated() {
                match e.payload {
                    CollectiveMsg::Sort { phase, value } => out[phase as usize] = value,
                    other => panic!("{other:?}"),
                }
            }
            let mut expect = readings;
            expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert_eq!(out, expect);
        }
    }
}
