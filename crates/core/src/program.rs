//! The programming primitives of the virtual architecture.
//!
//! §3.2: "The virtual architecture in this case study supports send() and
//! receive() message passing primitives that a node can use to communicate
//! with any other node in the network. A group communication primitive is
//! also available that can be used by a node to directly address a level-k
//! leader as a logical entity."
//!
//! A [`NodeProgram`] is the per-node reactive program (the output of
//! program synthesis, §4.3): it reacts to an initialization event and to
//! received messages through a [`NodeApi`] capability handle. The *same*
//! program type runs unchanged on:
//!
//! * the ideal virtual machine ([`crate::vm::Vm`]) — the algorithm
//!   designer's view, and
//! * the emulated physical network (`wsn-runtime`) — the deployed view,
//!
//! which is precisely the portability the virtual architecture promises.

use crate::grid::{GridCoord, VirtualGrid};
use crate::groups::Hierarchy;
use wsn_sim::SimTime;

/// Capabilities available to a node program while it handles an event.
pub trait NodeApi<P> {
    /// This virtual node's grid coordinates (`myCoords` in Figure 4).
    fn coord(&self) -> GridCoord;

    /// The virtual topology.
    fn grid(&self) -> VirtualGrid;

    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Samples the sensing interface at this point of coverage.
    fn read_sensor(&mut self) -> f64;

    /// Performs `units` of computation (charged to the energy model;
    /// instantaneous in simulated time, as in the paper's step analysis).
    fn compute(&mut self, units: u64);

    /// Sends `payload` (of size `units` data units) to the virtual node at
    /// `dest` — the architecture's `send()` primitive. Delivery latency
    /// and energy follow the cost model and the hop distance.
    fn send(&mut self, dest: GridCoord, units: u64, payload: P);

    /// Delivers a final result out of the network (or stores it at this
    /// node — the paper leaves the choice to "end user requirements").
    fn exfiltrate(&mut self, payload: P);

    /// Remaining energy budget of the executing node, when the platform
    /// tracks one (§3.1: "querying the properties of sensor nodes such as
    /// residual energy levels is useful for resource management").
    fn residual_energy(&self) -> Option<f64> {
        None
    }

    /// The group-communication primitive: addresses this node's level-`level`
    /// leader as a logical entity (§3.2). Resolution is local — group
    /// membership is a pure function of coordinates.
    fn send_to_leader(&mut self, hierarchy: &Hierarchy, level: u8, units: u64, payload: P) {
        let dest = hierarchy.leader(self.coord(), level);
        self.send(dest, units, payload);
    }

    /// Bumps the platform statistic counter `name`. Programs may emit
    /// domain counters (e.g. per-level merge completions) that the
    /// telemetry layer picks up; platforms without a stats sink ignore the
    /// call, so the default is a no-op.
    fn stat_incr(&mut self, name: &str) {
        let _ = name;
    }

    /// Records `value` into the platform statistic histogram `name`.
    /// No-op by default, like [`NodeApi::stat_incr`].
    fn stat_observe(&mut self, name: &str, value: f64) {
        let _ = (name, value);
    }
}

/// A reactive, event-driven node program (§4.3's programming model).
pub trait NodeProgram<P>: 'static {
    /// Fired once at start of the round (Figure 4's `start = true`).
    fn on_init(&mut self, api: &mut dyn NodeApi<P>);

    /// Fired on each received message.
    fn on_receive(&mut self, api: &mut dyn NodeApi<P>, from: GridCoord, payload: P);
}

/// Instantiates the program for each virtual node — the output of the
/// synthesis stage, parameterized by the node's role (coordinates).
pub type ProgramFactory<P> = Box<dyn FnMut(GridCoord) -> Box<dyn NodeProgram<P>>>;

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted NodeApi that records calls, for exercising default
    /// methods and program logic without a kernel.
    pub struct MockApi {
        pub coord: GridCoord,
        pub grid: VirtualGrid,
        pub sends: Vec<(GridCoord, u64, u32)>,
        pub exfiltrated: Vec<u32>,
        pub computed: u64,
        pub sensor: f64,
    }

    impl MockApi {
        pub fn at(col: u32, row: u32, side: u32) -> Self {
            MockApi {
                coord: GridCoord::new(col, row),
                grid: VirtualGrid::new(side),
                sends: vec![],
                exfiltrated: vec![],
                computed: 0,
                sensor: 0.0,
            }
        }
    }

    impl NodeApi<u32> for MockApi {
        fn coord(&self) -> GridCoord {
            self.coord
        }
        fn grid(&self) -> VirtualGrid {
            self.grid
        }
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn read_sensor(&mut self) -> f64 {
            self.sensor
        }
        fn compute(&mut self, units: u64) {
            self.computed += units;
        }
        fn send(&mut self, dest: GridCoord, units: u64, payload: u32) {
            self.sends.push((dest, units, payload));
        }
        fn exfiltrate(&mut self, payload: u32) {
            self.exfiltrated.push(payload);
        }
    }

    #[test]
    fn send_to_leader_resolves_through_hierarchy() {
        let h = Hierarchy::new(4);
        let mut api = MockApi::at(3, 1, 4);
        api.send_to_leader(&h, 1, 5, 42);
        assert_eq!(api.sends, vec![(GridCoord::new(2, 0), 5, 42)]);
        api.send_to_leader(&h, 2, 1, 7);
        assert_eq!(api.sends[1].0, GridCoord::new(0, 0));
    }

    #[test]
    fn default_stat_hooks_are_noops() {
        let mut api = MockApi::at(0, 0, 2);
        api.stat_incr("merge.level1.complete");
        api.stat_observe("merge.level1.complete_at", 3.0);
        assert_eq!(api.computed, 0, "hooks must not charge the platform");
    }

    #[test]
    fn send_to_leader_from_leader_is_self_send() {
        let h = Hierarchy::new(4);
        let mut api = MockApi::at(2, 0, 4);
        api.send_to_leader(&h, 1, 3, 9);
        assert_eq!(api.sends, vec![(GridCoord::new(2, 0), 3, 9)]);
    }

    /// A trivial program used to check the trait wiring compiles and runs.
    struct CountDown {
        hops: u32,
    }
    impl NodeProgram<u32> for CountDown {
        fn on_init(&mut self, api: &mut dyn NodeApi<u32>) {
            api.compute(1);
            if self.hops > 0 {
                api.send(GridCoord::new(0, 0), 1, self.hops);
            }
        }
        fn on_receive(&mut self, api: &mut dyn NodeApi<u32>, _from: GridCoord, payload: u32) {
            if payload == 0 {
                api.exfiltrate(0);
            } else {
                api.send(GridCoord::new(0, 0), 1, payload - 1);
            }
        }
    }

    #[test]
    fn programs_drive_the_api() {
        let mut api = MockApi::at(1, 1, 2);
        let mut p = CountDown { hops: 2 };
        p.on_init(&mut api);
        assert_eq!(api.computed, 1);
        assert_eq!(api.sends.len(), 1);
        p.on_receive(&mut api, GridCoord::new(0, 0), 0);
        assert_eq!(api.exfiltrated, vec![0]);
    }
}
