//! The virtual machine: ideal execution of node programs on the virtual
//! topology.
//!
//! This is the algorithm designer's mental model made executable: every
//! virtual grid node runs its [`NodeProgram`]; `send()` delivers after
//! exactly `hops × hop_ticks(units)` ticks; energy is charged per the cost
//! model to the source (tx), every relay on the dimension-order route
//! (rx + tx), and the destination (rx). There is no loss, no contention,
//! no protocol overhead — those live in the runtime system, and the gap
//! between this level and the emulated physical level is measured by
//! experiment EXP-9.

use crate::cost::CostModel;
use crate::grid::{GridCoord, VirtualGrid};
use crate::metrics::RunMetrics;
use crate::program::{NodeApi, NodeProgram};
use std::cell::RefCell;
use std::rc::Rc;
use wsn_net::{EnergyKind, EnergyLedger};
use wsn_sim::{Actor, ActorId, Context, Kernel, Payload, RunReport, SimTime, Stats};

/// The kernel message wrapping an application payload.
pub struct Envelope<P> {
    /// Originating virtual node.
    pub from: GridCoord,
    /// Application payload.
    pub payload: P,
}

impl<P: 'static> Payload for Envelope<P> {}

/// A result delivered out of the network by [`NodeApi::exfiltrate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Exfiltrated<P> {
    /// Node that exfiltrated.
    pub from: GridCoord,
    /// When it did.
    pub at: SimTime,
    /// The result.
    pub payload: P,
}

struct VmShared<P> {
    grid: VirtualGrid,
    cost: CostModel,
    ledger: RefCell<EnergyLedger>,
    exfil: RefCell<Vec<Exfiltrated<P>>>,
    field: Box<dyn Fn(GridCoord) -> f64>,
    actors: RefCell<Vec<ActorId>>,
}

impl<P> VmShared<P> {
    fn actor_of(&self, c: GridCoord) -> ActorId {
        self.actors.borrow()[self.grid.index(c)]
    }
}

struct VmNode<P: 'static> {
    coord: GridCoord,
    program: Box<dyn NodeProgram<P>>,
    shared: Rc<VmShared<P>>,
}

struct VmApi<'a, 'b, P: 'static> {
    coord: GridCoord,
    shared: &'a VmShared<P>,
    ctx: &'a mut Context<'b, Envelope<P>>,
}

impl<P: 'static> NodeApi<P> for VmApi<'_, '_, P> {
    fn coord(&self) -> GridCoord {
        self.coord
    }

    fn grid(&self) -> VirtualGrid {
        self.shared.grid
    }

    fn now(&self) -> SimTime {
        self.ctx.now()
    }

    fn read_sensor(&mut self) -> f64 {
        (self.shared.field)(self.coord)
    }

    fn compute(&mut self, units: u64) {
        let idx = self.shared.grid.index(self.coord);
        self.shared.ledger.borrow_mut().charge(
            idx,
            EnergyKind::Compute,
            self.shared.cost.compute(units),
        );
        self.ctx.stats().add("vm.compute_units", units);
    }

    fn send(&mut self, dest: GridCoord, units: u64, payload: P) {
        let grid = self.shared.grid;
        assert!(
            grid.contains(dest),
            "send to {dest:?} outside the virtual grid"
        );
        let hops = grid.hops(self.coord, dest);
        {
            // Charge the whole store-and-forward path: source tx, relays
            // rx+tx, destination rx.
            let mut ledger = self.shared.ledger.borrow_mut();
            let cost = &self.shared.cost;
            let u = units as f64;
            if hops > 0 {
                ledger.charge(grid.index(self.coord), EnergyKind::Tx, u * cost.tx_energy);
                let route = grid.route(self.coord, dest);
                for &relay in &route[..route.len() - 1] {
                    ledger.charge(grid.index(relay), EnergyKind::Rx, u * cost.rx_energy);
                    ledger.charge(grid.index(relay), EnergyKind::Tx, u * cost.tx_energy);
                }
                ledger.charge(grid.index(dest), EnergyKind::Rx, u * cost.rx_energy);
            }
        }
        let delay = SimTime::from_ticks(self.shared.cost.path_ticks(hops, units));
        let target = self.shared.actor_of(dest);
        self.ctx.stats().incr("vm.messages");
        self.ctx.stats().add("vm.data_units", units);
        self.ctx.stats().observe("vm.hops", f64::from(hops));
        self.ctx.send(
            target,
            delay,
            Envelope {
                from: self.coord,
                payload,
            },
        );
    }

    fn exfiltrate(&mut self, payload: P) {
        self.ctx.stats().incr("vm.exfiltrated");
        self.shared.exfil.borrow_mut().push(Exfiltrated {
            from: self.coord,
            at: self.ctx.now(),
            payload,
        });
    }

    fn residual_energy(&self) -> Option<f64> {
        let idx = self.shared.grid.index(self.coord);
        self.shared.ledger.borrow().residual(idx)
    }

    fn stat_incr(&mut self, name: &str) {
        self.ctx.stats().incr(name);
    }

    fn stat_observe(&mut self, name: &str, value: f64) {
        self.ctx.stats().observe(name, value);
    }
}

impl<P: 'static> Actor<Envelope<P>> for VmNode<P> {
    fn on_timer(&mut self, ctx: &mut Context<'_, Envelope<P>>, _tag: u64) {
        let mut api = VmApi {
            coord: self.coord,
            shared: &self.shared,
            ctx,
        };
        self.program.on_init(&mut api);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Envelope<P>>, _from: ActorId, msg: Envelope<P>) {
        let mut api = VmApi {
            coord: self.coord,
            shared: &self.shared,
            ctx,
        };
        self.program.on_receive(&mut api, msg.from, msg.payload);
    }
}

/// Outcome of a virtual-machine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmReport {
    /// Kernel-level summary.
    pub run: RunReport,
    /// Number of exfiltrated results.
    pub exfil_count: usize,
    /// Time of the last exfiltration (the usual latency measure).
    pub last_exfil: Option<SimTime>,
}

/// Executes node programs on the ideal virtual grid.
pub struct Vm<P: 'static> {
    kernel: Kernel<Envelope<P>>,
    shared: Rc<VmShared<P>>,
}

impl<P: 'static> Vm<P> {
    /// Builds a VM over a `side × side` grid.
    ///
    /// * `field` gives the sensor reading at each point of coverage;
    /// * `factory` instantiates each node's program from its coordinates
    ///   (the synthesis output);
    /// * `seed` feeds the deterministic per-node RNG streams.
    pub fn new(
        side: u32,
        cost: CostModel,
        seed: u64,
        field: impl Fn(GridCoord) -> f64 + 'static,
        mut factory: impl FnMut(GridCoord) -> Box<dyn NodeProgram<P>>,
    ) -> Self {
        let grid = VirtualGrid::new(side);
        let shared = Rc::new(VmShared {
            grid,
            cost,
            ledger: RefCell::new(EnergyLedger::unlimited(grid.node_count())),
            exfil: RefCell::new(Vec::new()),
            field: Box::new(field),
            actors: RefCell::new(Vec::with_capacity(grid.node_count())),
        });
        let mut kernel: Kernel<Envelope<P>> = Kernel::new(seed);
        for coord in grid.nodes() {
            let id = kernel.add_actor(Box::new(VmNode {
                coord,
                program: factory(coord),
                shared: shared.clone(),
            }));
            shared.actors.borrow_mut().push(id);
            // Fire on_init at t=0 (Figure 4's `start = true` condition).
            kernel.schedule_timer(SimTime::ZERO, id, 0);
        }
        Vm { kernel, shared }
    }

    /// The virtual topology.
    pub fn grid(&self) -> VirtualGrid {
        self.shared.grid
    }

    /// Runs to quiescence.
    pub fn run(&mut self) -> VmReport {
        let run = self.kernel.run();
        self.report(run)
    }

    /// Runs until `until` at the latest.
    pub fn run_until(&mut self, until: SimTime) -> VmReport {
        let run = self.kernel.run_until(until);
        self.report(run)
    }

    fn report(&self, run: RunReport) -> VmReport {
        let exfil = self.shared.exfil.borrow();
        VmReport {
            run,
            exfil_count: exfil.len(),
            last_exfil: exfil.iter().map(|e| e.at).max(),
        }
    }

    /// Removes and returns everything exfiltrated so far.
    pub fn take_exfiltrated(&mut self) -> Vec<Exfiltrated<P>> {
        std::mem::take(&mut self.shared.exfil.borrow_mut())
    }

    /// Snapshot of the per-virtual-node energy ledger.
    pub fn ledger(&self) -> EnergyLedger {
        self.shared.ledger.borrow().clone()
    }

    /// Kernel statistics (message counts, hop histogram, …).
    pub fn stats(&self) -> &Stats {
        self.kernel.stats()
    }

    /// The standard metric bundle, with latency = last exfiltration (or
    /// kernel end time when nothing exfiltrated).
    pub fn metrics(&self) -> RunMetrics {
        let exfil = self.shared.exfil.borrow();
        let latency = exfil
            .iter()
            .map(|e| e.at)
            .max()
            .unwrap_or(self.kernel.now())
            .ticks();
        RunMetrics::from_ledger(
            &self.shared.ledger.borrow(),
            latency,
            self.kernel.stats().counter("vm.messages"),
            self.kernel.stats().counter("vm.data_units"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every node sends its reading (1 unit) to the origin; the origin
    /// counts and exfiltrates the total when all arrived.
    struct Gather {
        expected: usize,
        seen: usize,
        sum: f64,
    }

    impl NodeProgram<f64> for Gather {
        fn on_init(&mut self, api: &mut dyn NodeApi<f64>) {
            let v = api.read_sensor();
            api.compute(1);
            if api.coord() != GridCoord::new(0, 0) {
                api.send(GridCoord::new(0, 0), 1, v);
            } else {
                self.sum += v;
                self.seen += 1;
            }
        }
        fn on_receive(&mut self, api: &mut dyn NodeApi<f64>, _from: GridCoord, payload: f64) {
            self.sum += payload;
            self.seen += 1;
            if self.seen == self.expected {
                api.exfiltrate(self.sum);
            }
        }
    }

    fn gather_vm(side: u32) -> Vm<f64> {
        let n = (side as usize).pow(2);
        Vm::new(
            side,
            CostModel::uniform(),
            1,
            |c| f64::from(c.col + c.row),
            move |_| {
                Box::new(Gather {
                    expected: n,
                    seen: 0,
                    sum: 0.0,
                })
            },
        )
    }

    #[test]
    fn gather_computes_exact_sum_and_latency() {
        let side = 4;
        let mut vm = gather_vm(side);
        let report = vm.run();
        assert_eq!(report.exfil_count, 1);
        // Latency = farthest node's path: 6 hops × 1 unit = 6 ticks.
        assert_eq!(report.last_exfil, Some(SimTime::from_ticks(6)));
        let results = vm.take_exfiltrated();
        let expected_sum: f64 = (0..side)
            .flat_map(|r| (0..side).map(move |c| f64::from(c + r)))
            .sum();
        assert_eq!(results[0].payload, expected_sum);
        assert_eq!(results[0].from, GridCoord::new(0, 0));
    }

    #[test]
    fn gather_energy_matches_closed_form() {
        let side = 4u32;
        let mut vm = gather_vm(side);
        vm.run();
        let ledger = vm.ledger();
        // Each node (c,r) ≠ origin moves 1 unit over c+r hops: 2 energy/hop.
        let expected_path: f64 = (0..side)
            .flat_map(|r| (0..side).map(move |c| f64::from(c + r)))
            .sum::<f64>()
            * 2.0;
        let expected_compute = f64::from(side * side); // 1 unit each on init
        assert!((ledger.total() - (expected_path + expected_compute)).abs() < 1e-9);
        // The origin relays nothing but receives 15 messages: rx = 15... no:
        // only messages addressed to it; every message terminates there, so
        // rx at origin = 15 units.
        assert_eq!(
            ledger.consumed_kind(vm.grid().index(GridCoord::new(0, 0)), EnergyKind::Rx),
            15.0
        );
    }

    #[test]
    fn messages_and_units_counted() {
        let mut vm = gather_vm(4);
        vm.run();
        assert_eq!(vm.stats().counter("vm.messages"), 15);
        assert_eq!(vm.stats().counter("vm.data_units"), 15);
        assert_eq!(vm.stats().counter("vm.exfiltrated"), 1);
        let m = vm.metrics();
        assert_eq!(m.messages, 15);
        assert_eq!(m.latency_ticks, 6);
        assert!(m.energy_balance > 0.0 && m.energy_balance <= 1.0);
    }

    #[test]
    fn self_send_is_free_and_immediate() {
        struct SelfSend {
            done: bool,
        }
        impl NodeProgram<f64> for SelfSend {
            fn on_init(&mut self, api: &mut dyn NodeApi<f64>) {
                let me = api.coord();
                api.send(me, 100, 1.0);
            }
            fn on_receive(&mut self, api: &mut dyn NodeApi<f64>, from: GridCoord, _p: f64) {
                assert_eq!(from, api.coord());
                self.done = true;
                api.exfiltrate(0.0);
            }
        }
        let mut vm: Vm<f64> = Vm::new(
            1,
            CostModel::uniform(),
            3,
            |_| 0.0,
            |_| Box::new(SelfSend { done: false }),
        );
        let report = vm.run();
        assert_eq!(report.exfil_count, 1);
        assert_eq!(report.last_exfil, Some(SimTime::ZERO));
        assert_eq!(vm.ledger().total(), 0.0, "self-sends cost nothing");
    }

    #[test]
    fn relay_nodes_pay_rx_and_tx() {
        struct OneShot;
        impl NodeProgram<f64> for OneShot {
            fn on_init(&mut self, api: &mut dyn NodeApi<f64>) {
                if api.coord() == GridCoord::new(0, 0) {
                    api.send(GridCoord::new(2, 0), 4, 9.0);
                }
            }
            fn on_receive(&mut self, _api: &mut dyn NodeApi<f64>, _f: GridCoord, _p: f64) {}
        }
        let mut vm: Vm<f64> = Vm::new(3, CostModel::uniform(), 3, |_| 0.0, |_| Box::new(OneShot));
        vm.run();
        let ledger = vm.ledger();
        let g = vm.grid();
        assert_eq!(ledger.consumed(g.index(GridCoord::new(0, 0))), 4.0); // tx only
        assert_eq!(ledger.consumed(g.index(GridCoord::new(1, 0))), 8.0); // rx+tx
        assert_eq!(ledger.consumed(g.index(GridCoord::new(2, 0))), 4.0); // rx only
        assert_eq!(ledger.consumed(g.index(GridCoord::new(0, 1))), 0.0);
    }

    #[test]
    fn vm_runs_are_deterministic() {
        let run = || {
            let mut vm = gather_vm(8);
            vm.run();
            (vm.metrics(), vm.take_exfiltrated().pop().map(|e| e.payload))
        };
        let (m1, r1) = run();
        let (m2, r2) = run();
        assert_eq!(m1, m2);
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "outside the virtual grid")]
    fn send_outside_grid_panics() {
        struct Bad;
        impl NodeProgram<f64> for Bad {
            fn on_init(&mut self, api: &mut dyn NodeApi<f64>) {
                api.send(GridCoord::new(9, 9), 1, 0.0);
            }
            fn on_receive(&mut self, _: &mut dyn NodeApi<f64>, _: GridCoord, _: f64) {}
        }
        let mut vm: Vm<f64> = Vm::new(2, CostModel::uniform(), 1, |_| 0.0, |_| Box::new(Bad));
        vm.run();
    }
}
