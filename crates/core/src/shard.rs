//! Shard plans: quad-tree quadrants as parallel-simulation shards.
//!
//! ROADMAP item 1 wants a spatially-sharded parallel kernel. The safe
//! decomposition candidate is the one the paper's §4 analysis already
//! reasons about: cut the quad-tree at level `L` and give each level-`L`
//! block (a `2^L × 2^L` quadrant of cells) to one shard. The claim that
//! makes this safe — cross-shard traffic flows only on region boundaries,
//! i.e. on the certified child-leader → parent-leader merge routes at
//! levels above the cut — is exactly what `wsn-analyze`'s shard-interference
//! passes verify. This module holds the *geometry* of that argument: the
//! shard map, the boundary hop-edge set, and the closed-form cross-shard
//! message count in the grid side `s`, all pure functions of coordinates
//! (the same property that makes the group middleware protocol-free).

use crate::grid::{GridCoord, VirtualGrid};
use crate::groups::Hierarchy;
use std::collections::BTreeSet;

/// A directed physical hop between two adjacent cells, as observed by the
/// routing layer (`from` transmits, `to` receives next).
pub type HopEdge = (GridCoord, GridCoord);

/// A quad-tree shard decomposition of a `2^p × 2^p` grid: cut the
/// hierarchy at `cut_level`, one shard per level-`cut_level` block.
///
/// ```
/// use wsn_core::{GridCoord, ShardPlan};
///
/// let plan = ShardPlan::new(4, 1); // 4×4 grid, 2×2-cell shards
/// assert_eq!(plan.shard_count(), 4);
/// assert_eq!(plan.shard_of(GridCoord::new(0, 0)), 0);
/// assert_eq!(plan.shard_of(GridCoord::new(3, 1)), 1);
/// assert_eq!(plan.shard_of(GridCoord::new(1, 2)), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    side: u32,
    cut_level: u8,
}

impl ShardPlan {
    /// A plan cutting the `side × side` grid's quad-tree at `cut_level`.
    /// `side` must be a power of two and `cut_level ≤ log₂ side`; panics
    /// otherwise (same contract as [`Hierarchy::new`]).
    pub fn new(side: u32, cut_level: u8) -> Self {
        let h = Hierarchy::new(side);
        assert!(
            cut_level <= h.max_level(),
            "cut level {cut_level} exceeds hierarchy depth {}",
            h.max_level()
        );
        ShardPlan { side, cut_level }
    }

    /// Grid side `s = 2^p`.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// The cut level `L`; shards are the level-`L` blocks.
    pub fn cut_level(&self) -> u8 {
        self.cut_level
    }

    /// Hierarchy depth `p = log₂ s`.
    pub fn max_level(&self) -> u8 {
        self.side.trailing_zeros() as u8
    }

    /// Cells per shard side, `2^L`.
    pub fn block_side(&self) -> u32 {
        1 << self.cut_level
    }

    /// Shards per grid side, `s / 2^L`.
    pub fn shards_per_side(&self) -> u32 {
        self.side / self.block_side()
    }

    /// Total shard count, `(s / 2^L)²`.
    pub fn shard_count(&self) -> u32 {
        self.shards_per_side().pow(2)
    }

    /// The shard owning cell `c`: row-major index of its level-`L` block.
    pub fn shard_of(&self, c: GridCoord) -> u32 {
        debug_assert!(c.col < self.side && c.row < self.side);
        let b = self.block_side();
        (c.row / b) * self.shards_per_side() + c.col / b
    }

    /// The NW-corner cell of shard `shard` (its block leader).
    pub fn shard_leader(&self, shard: u32) -> GridCoord {
        assert!(shard < self.shard_count(), "shard {shard} out of range");
        let per = self.shards_per_side();
        let b = self.block_side();
        GridCoord::new(shard % per * b, shard / per * b)
    }

    /// The certified boundary: every directed cell-adjacent hop edge that
    /// any child-leader → parent-leader merge route (dimension-order, the
    /// runtime's routing contract) takes across a shard boundary. Sorted
    /// and deduplicated. A conforming execution's cross-shard deliveries
    /// happen on exactly these edges.
    pub fn boundary_hop_edges(&self) -> BTreeSet<HopEdge> {
        let grid = VirtualGrid::new(self.side);
        let hier = Hierarchy::new(self.side);
        let mut edges = BTreeSet::new();
        for level in 1..=hier.max_level() {
            for parent in hier.leaders_at(level) {
                for child in hier.children(parent, level) {
                    let mut prev = child;
                    for hop in grid.route(child, parent) {
                        if self.shard_of(prev) != self.shard_of(hop) {
                            edges.insert((prev, hop));
                        }
                        prev = hop;
                    }
                }
            }
        }
        edges
    }

    /// Counts, by explicit route enumeration, the merge messages whose
    /// route crosses at least one shard boundary, with every send site
    /// weighted `k_send` (the per-child send multiplicity the certifier
    /// extracts from the program). Equals
    /// [`ShardPlan::cross_shard_closed_form`]; the certifier's conformance
    /// gate holds the two against each other.
    pub fn cross_shard_route_messages(&self, k_send: u64) -> u64 {
        let grid = VirtualGrid::new(self.side);
        let hier = Hierarchy::new(self.side);
        let mut crossing = 0;
        for level in 1..=hier.max_level() {
            for parent in hier.leaders_at(level) {
                for child in hier.children(parent, level) {
                    let mut prev = child;
                    let crosses = grid.route(child, parent).into_iter().any(|hop| {
                        let c = self.shard_of(prev) != self.shard_of(hop);
                        prev = hop;
                        c
                    });
                    if crosses {
                        crossing += k_send;
                    }
                }
            }
        }
        crossing
    }

    /// The §4-style closed form for the cross-shard message count:
    /// Σ_{l=L+1}^{p} 3 · k_send · (s / 2^l)². At each level above the cut
    /// a parent merges four children; the NW child is the parent itself
    /// (no message crosses), and the E, S, SE child leaders live in other
    /// shards, so each of their `k_send` sends crosses the boundary. At or
    /// below the cut, blocks nest inside a single shard and nothing
    /// crosses.
    pub fn cross_shard_closed_form(&self, k_send: u64) -> u64 {
        let p = self.max_level();
        let mut total = 0;
        for level in self.cut_level + 1..=p {
            let merges = u64::from(self.side >> level).pow(2);
            total += 3 * k_send * merges;
        }
        total
    }

    /// The closed form as text, for certificates and reports.
    pub fn cross_shard_symbolic(&self, k_send: u64) -> String {
        let p = self.max_level();
        if self.cut_level >= p {
            "0 (single shard: cut level equals hierarchy depth)".to_owned()
        } else {
            format!(
                "sum_{{l={}..{}}} 3*{k_send}*(s/2^l)^2 at s={}",
                self.cut_level + 1,
                p,
                self.side
            )
        }
    }
}

/// One send/exfiltrate site's observed region-space interval at a role:
/// the site at `rule`/`path` evaluated its level expression to values in
/// `[lo, hi]` across every reachable behavior of that role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteFootprint {
    /// Rule index in the guarded program.
    pub rule: usize,
    /// Action path within the rule (through nested branches).
    pub path: Vec<usize>,
    /// Smallest observed level.
    pub lo: i64,
    /// Largest observed level.
    pub hi: i64,
}

impl SiteFootprint {
    /// Whether this site's interval overlaps `other`'s (both sites can
    /// target the same region level).
    pub fn overlaps(&self, other: &SiteFootprint) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// The read/write footprint of one handler *role* in region space. A role
/// is the highest leader level of the executing cell — the only property
/// of a cell the synthesized programs can observe — so one footprint per
/// role covers every cell of that role.
///
/// Writes are the quorum slots of destination leaders (`group_level` of
/// fired sends: the message increments `msgsReceived[g]` at
/// `Leader(g)`); reads are the local summary slots a send serializes
/// (`data_level`) plus exfiltrated levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleFootprint {
    /// Highest leader level of the cells this footprint covers.
    pub role: u8,
    /// `group_level` intervals of sends that fired at this role.
    pub writes: Vec<SiteFootprint>,
    /// `data_level` intervals of sends that fired at this role.
    pub reads: Vec<SiteFootprint>,
    /// `ExfiltrateSummary` level intervals fired at this role.
    pub exfils: Vec<SiteFootprint>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_footprint_overlap_is_symmetric_interval_intersection() {
        let a = SiteFootprint {
            rule: 0,
            path: vec![],
            lo: 1,
            hi: 3,
        };
        let b = SiteFootprint {
            rule: 1,
            path: vec![0],
            lo: 3,
            hi: 5,
        };
        let c = SiteFootprint {
            rule: 2,
            path: vec![],
            lo: 4,
            hi: 4,
        };
        assert!(a.overlaps(&b) && b.overlaps(&a));
        assert!(!a.overlaps(&c) && !c.overlaps(&a));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn shard_map_is_a_partition() {
        for (side, cut) in [(4, 1), (4, 2), (8, 1), (8, 2), (8, 3), (16, 2)] {
            let plan = ShardPlan::new(side, cut);
            let grid = VirtualGrid::new(side);
            let mut counts = vec![0u32; plan.shard_count() as usize];
            for c in grid.nodes() {
                counts[plan.shard_of(c) as usize] += 1;
            }
            let per_shard = plan.block_side().pow(2);
            assert!(counts.iter().all(|&n| n == per_shard), "{side}/{cut}");
        }
    }

    #[test]
    fn shard_leader_inverts_shard_of() {
        let plan = ShardPlan::new(8, 2);
        for s in 0..plan.shard_count() {
            let leader = plan.shard_leader(s);
            assert_eq!(plan.shard_of(leader), s);
            assert_eq!(leader.col % plan.block_side(), 0);
            assert_eq!(leader.row % plan.block_side(), 0);
        }
    }

    #[test]
    fn side4_cut1_boundary_edges_match_hand_derivation() {
        // The only routes above the cut are the three non-self level-2
        // children converging on the origin, column-first.
        let plan = ShardPlan::new(4, 1);
        let edges = plan.boundary_hop_edges();
        let expect: BTreeSet<HopEdge> = [
            (GridCoord::new(2, 0), GridCoord::new(1, 0)),
            (GridCoord::new(0, 2), GridCoord::new(0, 1)),
            (GridCoord::new(2, 2), GridCoord::new(1, 2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(edges, expect);
    }

    #[test]
    fn cut_at_depth_means_one_shard_and_no_boundary() {
        let plan = ShardPlan::new(4, 2);
        assert_eq!(plan.shard_count(), 1);
        assert!(plan.boundary_hop_edges().is_empty());
        assert_eq!(plan.cross_shard_closed_form(1), 0);
        assert_eq!(plan.cross_shard_route_messages(1), 0);
    }

    #[test]
    fn closed_form_matches_route_enumeration() {
        for side in [2u32, 4, 8, 16] {
            for cut in 0..=side.trailing_zeros() as u8 {
                let plan = ShardPlan::new(side, cut);
                for k in [1u64, 2] {
                    assert_eq!(
                        plan.cross_shard_closed_form(k),
                        plan.cross_shard_route_messages(k),
                        "side {side} cut {cut} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn known_cross_shard_counts() {
        assert_eq!(ShardPlan::new(4, 1).cross_shard_closed_form(1), 3);
        assert_eq!(ShardPlan::new(8, 1).cross_shard_closed_form(1), 15);
        assert_eq!(ShardPlan::new(8, 2).cross_shard_closed_form(1), 3);
        assert_eq!(ShardPlan::new(16, 1).cross_shard_closed_form(1), 63);
    }

    #[test]
    fn every_boundary_edge_is_cell_adjacent_and_crossing() {
        let plan = ShardPlan::new(8, 1);
        for (a, b) in plan.boundary_hop_edges() {
            assert_eq!(a.manhattan(b), 1);
            assert_ne!(plan.shard_of(a), plan.shard_of(b));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds hierarchy depth")]
    fn cut_above_depth_panics() {
        ShardPlan::new(4, 3);
    }
}
