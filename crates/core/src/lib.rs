//! # wsn-core — the virtual architecture (the paper's contribution)
//!
//! Bakshi & Prasanna's central idea is to let a domain expert design,
//! analyze, and synthesize sensor-network applications against a *virtual
//! architecture*: an abstract machine model plus primitives whose
//! implementation on the real network is someone else's problem (the
//! runtime system, crate `wsn-runtime`). This crate is that abstract
//! machine, with all four components the paper enumerates in §2:
//!
//! * **Network model** ([`grid`]) — an oriented two-dimensional grid of
//!   virtual nodes (one per point of coverage), with dimension-order
//!   shortest-path routing;
//! * **Programming primitives** ([`program`]) — `send()`/`receive()`
//!   message passing to any virtual node, plus group communication that
//!   addresses "the level-k leader" as a logical entity;
//! * **Middleware services** ([`groups`]) — the hierarchical group
//!   formation service: at level k the grid is partitioned into 2^k × 2^k
//!   blocks whose north-west node is leader;
//! * **Cost functions** ([`cost`], [`estimate`], [`metrics`]) — the uniform
//!   cost model (one unit of energy per unit of data transmitted, received
//!   or computed; latency proportional to data volume and hop count) and
//!   closed-form first-order performance estimation for algorithms
//!   expressed against the model.
//!
//! [`vm`] executes a node program *directly on the virtual topology* — the
//! designer's idealized view. The same program, unchanged, runs on a real
//! (simulated) deployment through `wsn-runtime`; comparing the two (and
//! the closed forms) is experiment EXP-9.

#![forbid(unsafe_code)]

pub mod arch;
pub mod collective;
pub mod cost;
pub mod estimate;
pub mod framelayout;
pub mod grid;
pub mod groups;
pub mod metrics;
pub mod program;
pub mod shard;
pub mod tree;
pub mod vm;

pub use arch::VirtualArchitecture;
pub use collective::{
    snake_coord, snake_index, CollectiveMsg, DisseminateProgram, ReduceOp, ReduceProgram,
    SortProgram,
};
pub use cost::{BudgetViolation, CostBudget, CostModel};
pub use estimate::{
    centralized_collection_estimate, follower_to_leader_hops, full_boundary_units,
    quadtree_merge_estimate, Estimate,
};
pub use framelayout::{
    framed_payload_fits, payload_bound_bytes, payload_bound_units, summary_wire_bound_bytes,
    FrameField, VariantLayout, FRAME_LAYOUT_VERSION, HEADER_FIELDS, RTMSG_VARIANTS,
};
pub use grid::{Direction, GridCoord, VirtualGrid};
pub use groups::Hierarchy;
pub use metrics::{RunMetrics, CTR_DATA_UNITS, CTR_MESSAGES};
pub use program::{NodeApi, NodeProgram, ProgramFactory};
pub use shard::{HopEdge, RoleFootprint, ShardPlan, SiteFootprint};
pub use tree::{
    spanning_tree_from_positions, tree_convergecast_estimate, ConvergecastSum, TreeApi,
    TreeProgram, TreeVm, VirtualTree,
};
pub use vm::{Exfiltrated, Vm, VmReport};
