//! First-order analytical performance estimation.
//!
//! §2: the virtual architecture must "facilitate rapid first-order
//! performance estimation of algorithms" so the end user can, e.g.,
//! "decide if a divide and conquer approach is better than a centralized
//! approach". These closed forms are that facility, for the two algorithms
//! of the case study. They are *exact* under the virtual machine's
//! semantics (dimension-order routing, store-and-forward, no contention),
//! which is what EXP-9 verifies; the emulated physical network then adds
//! protocol overheads the estimate deliberately ignores.

use crate::cost::CostModel;
use crate::grid::{GridCoord, VirtualGrid};
use crate::groups::Hierarchy;
use serde::{Deserialize, Serialize};

/// A first-order performance estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Critical-path latency in ticks.
    pub latency_ticks: u64,
    /// Network-wide energy.
    pub total_energy: f64,
    /// Application messages (self-deliveries excluded).
    pub messages: u64,
    /// Data units moved over at least one hop.
    pub data_units: u64,
}

/// Estimates the divide-and-conquer quad-tree merge (§4.1) on a
/// `side × side` grid (`side` a power of two).
///
/// * `payload_units(level)` — size of the boundary summary describing a
///   level-`level` extent (a `2^level × 2^level` block);
/// * `merge_compute_units(level)` — computation charged by a level-`level`
///   merge (level ≥ 1);
/// * `leaf_compute_units` — computation charged by each leaf to determine
///   its feature status.
///
/// Derivation: at level `l ∈ 1..=log₂ side`, the grid holds
/// `(side/2^l)²` merges. With quadrant side `q = 2^(l−1)`, the NW child
/// leader *is* the parent (free self-delivery); the NE and SW child
/// leaders are `q` hops away; the SE child leader is `2q` hops away. Each
/// merge therefore moves `payload_units(l−1)` over `q + q + 2q = 4q` hops
/// total, and its critical path waits for the farthest child (`2q` hops).
pub fn quadtree_merge_estimate(
    side: u32,
    cost: &CostModel,
    payload_units: &dyn Fn(u8) -> u64,
    merge_compute_units: &dyn Fn(u8) -> u64,
    leaf_compute_units: u64,
) -> Estimate {
    let hierarchy = Hierarchy::new(side); // validates power of two
    let p = hierarchy.max_level();
    let n = u64::from(side) * u64::from(side);

    let mut latency = 0u64;
    let mut energy = n as f64 * cost.compute(leaf_compute_units);
    let mut messages = 0u64;
    let mut data_units = 0u64;

    for level in 1..=p {
        let q = 1u32 << (level - 1);
        let merges = (u64::from(side) >> level).pow(2);
        let units = payload_units(level - 1);
        // Two children at q hops, one at 2q hops; NW child is local.
        energy += merges as f64
            * (2.0 * cost.path_energy(q, units)
                + cost.path_energy(2 * q, units)
                + cost.compute(merge_compute_units(level)));
        messages += merges * 3;
        data_units += merges * 3 * units;
        latency += cost.path_ticks(2 * q, units);
    }

    Estimate {
        latency_ticks: latency,
        total_energy: energy,
        messages,
        data_units,
    }
}

/// Estimates the centralized baseline: every node computes its reading
/// (`leaf_compute_units`), ships it (`reading_units` data units) straight
/// to the sink at the origin, and the sink computes
/// `sink_compute_units_per_reading` on each of the `side²` readings.
///
/// No contention is modeled (the cost model has none), so latency is the
/// farthest node's path: `2(side−1)` hops.
pub fn centralized_collection_estimate(
    side: u32,
    cost: &CostModel,
    reading_units: u64,
    leaf_compute_units: u64,
    sink_compute_units_per_reading: u64,
) -> Estimate {
    let grid = VirtualGrid::new(side);
    let sink = GridCoord::new(0, 0);
    let mut energy = 0.0;
    let mut messages = 0u64;
    let mut data_units = 0u64;
    for c in grid.nodes() {
        energy += cost.compute(leaf_compute_units) + cost.compute(sink_compute_units_per_reading);
        if c == sink {
            continue;
        }
        let hops = grid.hops(c, sink);
        energy += cost.path_energy(hops, reading_units);
        messages += 1;
        data_units += reading_units;
    }
    let max_hops = 2 * (side - 1);
    Estimate {
        latency_ticks: cost.path_ticks(max_hops, reading_units),
        total_energy: energy,
        messages,
        data_units,
    }
}

/// The paper's message-size model for the boundary summary of a *full*
/// level-`level` extent (the worst case, used by the analytic estimates
/// and the cost certifier's payload upper bound): one framing unit plus
/// one per border cell of the `2^level × 2^level` block — `4·2^level − 3`
/// for `level ≥ 1`, two units for a single cell.
pub fn full_boundary_units(level: u8) -> u64 {
    if level == 0 {
        2
    } else {
        4 * (1u64 << level) - 3
    }
}

/// Mean and maximum follower→leader hop distance inside a level-`level`
/// block (§4.2's group-communication cost): with block side `b = 2^level`,
/// the mean of `col + row` over the block is `b − 1` and the maximum is
/// `2(b − 1)`.
///
/// ```
/// assert_eq!(wsn_core::follower_to_leader_hops(2), (3.0, 6));
/// ```
pub fn follower_to_leader_hops(level: u8) -> (f64, u32) {
    let b = 1u32 << level;
    (f64::from(b - 1), 2 * (b - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_payload(_level: u8) -> u64 {
        1
    }

    #[test]
    fn quadtree_side2_by_hand() {
        // side=2: one merge at level 1, q=1: children at 1,1,2 hops, 1 unit.
        let e = quadtree_merge_estimate(2, &CostModel::uniform(), &unit_payload, &|_| 0, 1);
        assert_eq!(e.messages, 3);
        assert_eq!(e.data_units, 3);
        // energy = 4 leaves compute + path: (1+1+2) hops × 2 = 8.
        assert_eq!(e.total_energy, 4.0 + 8.0);
        // latency = farthest child: 2 hops × 1 unit.
        assert_eq!(e.latency_ticks, 2);
    }

    #[test]
    fn quadtree_side4_by_hand() {
        let e = quadtree_merge_estimate(4, &CostModel::uniform(), &unit_payload, &|_| 0, 0);
        // level1: 4 merges × 3 msgs; level2: 1 merge × 3 msgs.
        assert_eq!(e.messages, 15);
        // level1 energy: 4 × (4 hops × 2) = 32; level2: q=2 → 8 hops × 2 = 16.
        assert_eq!(e.total_energy, 48.0);
        // latency: level1 2 ticks + level2 4 ticks.
        assert_eq!(e.latency_ticks, 6);
    }

    #[test]
    fn quadtree_latency_is_o_sqrt_n() {
        // With constant payloads, latency = Σ 2^l = 2(side − 1) ∝ √N.
        let cost = CostModel::uniform();
        for p in 1..=6u32 {
            let side = 1 << p;
            let e = quadtree_merge_estimate(side, &cost, &unit_payload, &|_| 0, 0);
            assert_eq!(e.latency_ticks, u64::from(2 * (side - 1)));
        }
    }

    #[test]
    fn centralized_side2_by_hand() {
        let e = centralized_collection_estimate(2, &CostModel::uniform(), 1, 0, 0);
        // Nodes at (1,0),(0,1): 1 hop; (1,1): 2 hops. Energy 2×(1+1+2)=8.
        assert_eq!(e.total_energy, 8.0);
        assert_eq!(e.messages, 3);
        assert_eq!(e.latency_ticks, 2);
    }

    #[test]
    fn centralized_energy_grows_superlinearly() {
        let cost = CostModel::uniform();
        let e8 = centralized_collection_estimate(8, &cost, 1, 0, 0);
        let e16 = centralized_collection_estimate(16, &cost, 1, 0, 0);
        // Energy ∝ N·√N: quadrupling N scales energy by ~8.
        let ratio = e16.total_energy / e8.total_energy;
        assert!((ratio - 8.0).abs() < 0.6, "ratio {ratio}");
    }

    #[test]
    fn dandc_beats_centralized_at_scale_with_constant_summaries() {
        // The design-flow decision the paper cites: for large N, in-network
        // merging wins on total energy.
        let cost = CostModel::uniform();
        let side = 32;
        let dandc = quadtree_merge_estimate(side, &cost, &|_| 4, &|_| 4, 1);
        let central = centralized_collection_estimate(side, &cost, 1, 1, 1);
        assert!(
            dandc.total_energy < central.total_energy,
            "D&C {} vs centralized {}",
            dandc.total_energy,
            central.total_energy
        );
    }

    #[test]
    fn follower_hops_formula() {
        assert_eq!(follower_to_leader_hops(0), (0.0, 0));
        assert_eq!(follower_to_leader_hops(1), (1.0, 2));
        assert_eq!(follower_to_leader_hops(3), (7.0, 14));
    }

    #[test]
    fn follower_hops_mean_matches_enumeration() {
        for level in 1..=4u8 {
            let b = 1u32 << level;
            let mut sum = 0u64;
            for row in 0..b {
                for col in 0..b {
                    sum += u64::from(col + row);
                }
            }
            let mean = sum as f64 / f64::from(b * b);
            let (formula, max) = follower_to_leader_hops(level);
            assert!((mean - formula).abs() < 1e-12, "level {level}");
            assert_eq!(max, 2 * (b - 1));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        quadtree_merge_estimate(6, &CostModel::uniform(), &unit_payload, &|_| 0, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected_even_when_even() {
        quadtree_merge_estimate(12, &CostModel::uniform(), &unit_payload, &|_| 0, 1);
    }

    #[test]
    fn side_one_grid_is_a_single_leaf() {
        // Depth 0: no merges, no messages, no latency — only the one
        // leaf's compute charge.
        let e = quadtree_merge_estimate(1, &CostModel::uniform(), &unit_payload, &|_| 7, 3);
        assert_eq!(e.messages, 0);
        assert_eq!(e.data_units, 0);
        assert_eq!(e.latency_ticks, 0);
        assert_eq!(e.total_energy, 3.0);
        let c = centralized_collection_estimate(1, &CostModel::uniform(), 5, 3, 2);
        assert_eq!(c.messages, 0);
        assert_eq!(c.total_energy, 5.0); // leaf + sink compute, no paths
        assert_eq!(c.latency_ticks, 0);
    }

    #[test]
    fn zero_cost_model_still_counts_steps() {
        // All-zero coefficients: energy vanishes, but hop_ticks floors at
        // one tick per hop, so latency degrades to the §4.1 *step* count
        // 2(side − 1) rather than to zero.
        let zero = CostModel {
            tx_energy: 0.0,
            rx_energy: 0.0,
            compute_energy: 0.0,
            ticks_per_unit: 0,
        };
        for side in [2u32, 4, 8] {
            let e = quadtree_merge_estimate(side, &zero, &full_boundary_units, &|_| 1, 1);
            assert_eq!(e.total_energy, 0.0, "side {side}");
            assert_eq!(e.latency_ticks, u64::from(2 * (side - 1)), "side {side}");
            assert!(e.messages > 0);
        }
    }

    #[test]
    fn full_boundary_units_by_hand() {
        assert_eq!(full_boundary_units(0), 2);
        assert_eq!(full_boundary_units(1), 5); // 2×2 block: 4 border + 1
        assert_eq!(full_boundary_units(2), 13); // 4×4 block: 12 border + 1
        assert_eq!(full_boundary_units(3), 29);
    }

    #[test]
    fn quadtree_estimate_is_monotone_in_side() {
        // Property: under the paper's payload model every estimated
        // dimension strictly grows with the grid side (more levels, more
        // merges, longer critical path).
        let cost = CostModel::uniform();
        let estimates: Vec<Estimate> = (1..=7u32)
            .map(|p| {
                quadtree_merge_estimate(
                    1 << p,
                    &cost,
                    &full_boundary_units,
                    &|l| 4 * full_boundary_units(l - 1),
                    1,
                )
            })
            .collect();
        for w in estimates.windows(2) {
            assert!(w[1].latency_ticks > w[0].latency_ticks, "{w:?}");
            assert!(w[1].total_energy > w[0].total_energy, "{w:?}");
            assert!(w[1].messages > w[0].messages, "{w:?}");
            assert!(w[1].data_units > w[0].data_units, "{w:?}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Monotonicity holds for *any* positive cost model, not just the
        /// uniform one: scaling coefficients cannot reorder sides.
        #[test]
        fn monotone_in_side_for_random_cost_models(
            tx in 0.1f64..10.0,
            rx in 0.1f64..10.0,
            compute in 0.0f64..10.0,
            tpu in 1u64..5,
            p in 1u32..6,
        ) {
            let cost = CostModel {
                tx_energy: tx,
                rx_energy: rx,
                compute_energy: compute,
                ticks_per_unit: tpu,
            };
            let small = quadtree_merge_estimate(
                1 << p, &cost, &full_boundary_units, &|_| 1, 1);
            let large = quadtree_merge_estimate(
                1 << (p + 1), &cost, &full_boundary_units, &|_| 1, 1);
            prop_assert!(large.latency_ticks > small.latency_ticks);
            prop_assert!(large.total_energy > small.total_energy);
            prop_assert!(large.messages > small.messages);
        }
    }
}
