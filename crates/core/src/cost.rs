//! The uniform cost model.
//!
//! §3.2: "the energy cost for transmission, reception or computation of
//! one unit of data is defined to be one unit of energy. One unit of
//! latency is the time taken to complete c computations or transmit b
//! units of data." We normalize c = b = 1 data unit per latency unit in
//! [`CostModel::uniform`], and keep every coefficient configurable because
//! the paper explicitly allows "a different set of cost functions … if the
//! characteristics of the deployment necessitate it".

use serde::{Deserialize, Serialize};

/// Energy and latency coefficients of the virtual architecture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Energy per unit of data transmitted.
    pub tx_energy: f64,
    /// Energy per unit of data received.
    pub rx_energy: f64,
    /// Energy per unit of data computed upon.
    pub compute_energy: f64,
    /// Latency ticks per unit of data per hop.
    pub ticks_per_unit: u64,
}

impl CostModel {
    /// The paper's uniform cost function: every coefficient is one.
    pub fn uniform() -> Self {
        CostModel {
            tx_energy: 1.0,
            rx_energy: 1.0,
            compute_energy: 1.0,
            ticks_per_unit: 1,
        }
    }

    /// Latency of pushing `units` of data across one hop (min. one tick).
    pub fn hop_ticks(&self, units: u64) -> u64 {
        (units * self.ticks_per_unit).max(1)
    }

    /// Latency of `units` over `hops` hops, store-and-forward.
    pub fn path_ticks(&self, hops: u32, units: u64) -> u64 {
        u64::from(hops) * self.hop_ticks(units)
    }

    /// Total network energy to move `units` over `hops` hops: the source
    /// transmits once, every intermediate relays (rx + tx), the
    /// destination receives once — `hops` transmissions and `hops`
    /// receptions in all.
    pub fn path_energy(&self, hops: u32, units: u64) -> f64 {
        f64::from(hops) * units as f64 * (self.tx_energy + self.rx_energy)
    }

    /// Energy to compute on `units` of data.
    pub fn compute(&self, units: u64) -> f64 {
        units as f64 * self.compute_energy
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::uniform()
    }
}

/// Design-time performance budget a mapped application must stay within.
///
/// The paper's methodology is *analyze before deploy*: the closed-form
/// estimates (and [`crate::RunMetrics`] measurements) of a candidate
/// mapping are compared against mission requirements at design time. A
/// budget captures those requirements as optional ceilings/floors so the
/// static analyzer can lint a mapping the same way it lints a program.
/// `None` leaves a dimension unconstrained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBudget {
    /// Ceiling on network-wide energy per round.
    pub max_total_energy: Option<f64>,
    /// Ceiling on the most-loaded node's energy per round (hotspot).
    pub max_node_energy: Option<f64>,
    /// Floor on Jain fairness of per-node energy (0..=1).
    pub min_energy_balance: Option<f64>,
    /// Ceiling on one round's critical-path latency in ticks.
    pub max_latency_ticks: Option<u64>,
}

/// One budget dimension a mapping exceeds, with the measured and budgeted
/// values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetViolation {
    /// Total energy above `max_total_energy`.
    TotalEnergy {
        /// Measured total energy.
        actual: f64,
        /// The budget ceiling.
        budget: f64,
    },
    /// Hotspot energy above `max_node_energy`.
    NodeEnergy {
        /// Measured hotspot energy.
        actual: f64,
        /// The budget ceiling.
        budget: f64,
    },
    /// Energy balance below `min_energy_balance`.
    EnergyBalance {
        /// Measured Jain fairness.
        actual: f64,
        /// The budget floor.
        budget: f64,
    },
    /// Latency above `max_latency_ticks`.
    Latency {
        /// Measured critical-path ticks.
        actual: u64,
        /// The budget ceiling.
        budget: u64,
    },
}

impl CostBudget {
    /// A budget with every dimension unconstrained.
    pub fn unbounded() -> Self {
        CostBudget::default()
    }

    /// True when no dimension is constrained.
    pub fn is_unbounded(&self) -> bool {
        *self == CostBudget::default()
    }

    /// Checks measured round costs against the budget, collecting every
    /// exceeded dimension (the lint sweep wants all of them).
    pub fn violations(
        &self,
        total_energy: f64,
        max_node_energy: f64,
        energy_balance: f64,
        latency_ticks: u64,
    ) -> Vec<BudgetViolation> {
        let mut out = Vec::new();
        if let Some(budget) = self.max_total_energy {
            if total_energy > budget {
                out.push(BudgetViolation::TotalEnergy {
                    actual: total_energy,
                    budget,
                });
            }
        }
        if let Some(budget) = self.max_node_energy {
            if max_node_energy > budget {
                out.push(BudgetViolation::NodeEnergy {
                    actual: max_node_energy,
                    budget,
                });
            }
        }
        if let Some(budget) = self.min_energy_balance {
            if energy_balance < budget {
                out.push(BudgetViolation::EnergyBalance {
                    actual: energy_balance,
                    budget,
                });
            }
        }
        if let Some(budget) = self.max_latency_ticks {
            if latency_ticks > budget {
                out.push(BudgetViolation::Latency {
                    actual: latency_ticks,
                    budget,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_coefficients_are_one() {
        let c = CostModel::uniform();
        assert_eq!(c.tx_energy, 1.0);
        assert_eq!(c.rx_energy, 1.0);
        assert_eq!(c.compute_energy, 1.0);
        assert_eq!(c.ticks_per_unit, 1);
    }

    #[test]
    fn hop_ticks_floor_at_one() {
        let c = CostModel::uniform();
        assert_eq!(c.hop_ticks(0), 1);
        assert_eq!(c.hop_ticks(7), 7);
    }

    #[test]
    fn path_costs_scale_linearly() {
        let c = CostModel::uniform();
        assert_eq!(c.path_ticks(3, 5), 15);
        assert_eq!(c.path_energy(3, 5), 30.0);
        assert_eq!(c.path_energy(0, 5), 0.0);
        assert_eq!(c.path_ticks(0, 5), 0);
    }

    #[test]
    fn asymmetric_model_respected() {
        let c = CostModel {
            tx_energy: 2.0,
            rx_energy: 0.5,
            compute_energy: 0.1,
            ticks_per_unit: 3,
        };
        assert_eq!(c.path_energy(2, 4), 2.0 * 4.0 * 2.5);
        assert_eq!(c.path_ticks(2, 4), 24);
        assert!((c.compute(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_uniform() {
        assert_eq!(CostModel::default(), CostModel::uniform());
    }

    #[test]
    fn unbounded_budget_accepts_everything() {
        let b = CostBudget::unbounded();
        assert!(b.is_unbounded());
        assert_eq!(b.violations(1e18, 1e18, 0.0, u64::MAX), Vec::new());
    }

    #[test]
    fn budget_collects_all_exceeded_dimensions() {
        let b = CostBudget {
            max_total_energy: Some(100.0),
            max_node_energy: Some(10.0),
            min_energy_balance: Some(0.9),
            max_latency_ticks: Some(50),
        };
        assert_eq!(b.violations(99.0, 9.0, 0.95, 50), Vec::new());
        let all = b.violations(101.0, 11.0, 0.5, 51);
        assert_eq!(all.len(), 4);
        assert!(matches!(
            all[0],
            BudgetViolation::TotalEnergy {
                actual,
                budget
            } if actual == 101.0 && budget == 100.0
        ));
        assert!(matches!(
            all[3],
            BudgetViolation::Latency {
                actual: 51,
                budget: 50
            }
        ));
        // Partial excess reports only the exceeded dimensions.
        let partial = b.violations(99.0, 11.0, 0.95, 10);
        assert_eq!(partial.len(), 1);
        assert!(matches!(partial[0], BudgetViolation::NodeEnergy { .. }));
    }
}
