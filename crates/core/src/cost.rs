//! The uniform cost model.
//!
//! §3.2: "the energy cost for transmission, reception or computation of
//! one unit of data is defined to be one unit of energy. One unit of
//! latency is the time taken to complete c computations or transmit b
//! units of data." We normalize c = b = 1 data unit per latency unit in
//! [`CostModel::uniform`], and keep every coefficient configurable because
//! the paper explicitly allows "a different set of cost functions … if the
//! characteristics of the deployment necessitate it".

use serde::{Deserialize, Serialize};

/// Energy and latency coefficients of the virtual architecture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Energy per unit of data transmitted.
    pub tx_energy: f64,
    /// Energy per unit of data received.
    pub rx_energy: f64,
    /// Energy per unit of data computed upon.
    pub compute_energy: f64,
    /// Latency ticks per unit of data per hop.
    pub ticks_per_unit: u64,
}

impl CostModel {
    /// The paper's uniform cost function: every coefficient is one.
    pub fn uniform() -> Self {
        CostModel {
            tx_energy: 1.0,
            rx_energy: 1.0,
            compute_energy: 1.0,
            ticks_per_unit: 1,
        }
    }

    /// Latency of pushing `units` of data across one hop (min. one tick).
    pub fn hop_ticks(&self, units: u64) -> u64 {
        (units * self.ticks_per_unit).max(1)
    }

    /// Latency of `units` over `hops` hops, store-and-forward.
    pub fn path_ticks(&self, hops: u32, units: u64) -> u64 {
        u64::from(hops) * self.hop_ticks(units)
    }

    /// Total network energy to move `units` over `hops` hops: the source
    /// transmits once, every intermediate relays (rx + tx), the
    /// destination receives once — `hops` transmissions and `hops`
    /// receptions in all.
    pub fn path_energy(&self, hops: u32, units: u64) -> f64 {
        f64::from(hops) * units as f64 * (self.tx_energy + self.rx_energy)
    }

    /// Energy to compute on `units` of data.
    pub fn compute(&self, units: u64) -> f64 {
        units as f64 * self.compute_energy
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_coefficients_are_one() {
        let c = CostModel::uniform();
        assert_eq!(c.tx_energy, 1.0);
        assert_eq!(c.rx_energy, 1.0);
        assert_eq!(c.compute_energy, 1.0);
        assert_eq!(c.ticks_per_unit, 1);
    }

    #[test]
    fn hop_ticks_floor_at_one() {
        let c = CostModel::uniform();
        assert_eq!(c.hop_ticks(0), 1);
        assert_eq!(c.hop_ticks(7), 7);
    }

    #[test]
    fn path_costs_scale_linearly() {
        let c = CostModel::uniform();
        assert_eq!(c.path_ticks(3, 5), 15);
        assert_eq!(c.path_energy(3, 5), 30.0);
        assert_eq!(c.path_energy(0, 5), 0.0);
        assert_eq!(c.path_ticks(0, 5), 0);
    }

    #[test]
    fn asymmetric_model_respected() {
        let c = CostModel {
            tx_energy: 2.0,
            rx_energy: 0.5,
            compute_energy: 0.1,
            ticks_per_unit: 3,
        };
        assert_eq!(c.path_energy(2, 4), 2.0 * 4.0 * 2.5);
        assert_eq!(c.path_ticks(2, 4), 24);
        assert!((c.compute(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_uniform() {
        assert_eq!(CostModel::default(), CostModel::uniform());
    }
}
