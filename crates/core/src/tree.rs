//! The alternative network model: a tree virtual topology.
//!
//! §3.2: "A grid will be an appropriate choice of virtual topology for
//! uniform node deployment over the terrain. For non-uniform deployments,
//! other virtual topologies such as a tree could be more appropriate."
//!
//! This module provides that alternative: [`VirtualTree`] (an arbitrary
//! rooted tree of virtual nodes, e.g. cluster heads of a clustered
//! deployment), a small tree-structured execution environment
//! ([`TreeVm`]) whose programs communicate along tree edges, the
//! convergecast aggregation program, and a closed-form estimator — so the
//! design flow of Figure 1 can weigh *architectures* against each other,
//! not just algorithms within one architecture (see EXP-19).

use crate::cost::CostModel;
use crate::estimate::Estimate;
use std::cell::RefCell;
use std::rc::Rc;
use wsn_net::{EnergyKind, EnergyLedger};
use wsn_sim::{Actor, ActorId, Context, Kernel, Payload, SimTime};

/// A rooted tree of virtual nodes, identified by dense indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualTree {
    parents: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    depths: Vec<u32>,
    root: usize,
}

impl VirtualTree {
    /// Builds a tree from parent pointers (`None` exactly at the root).
    /// Panics unless the structure is a single rooted tree.
    pub fn from_parents(parents: Vec<Option<usize>>) -> Self {
        let n = parents.len();
        assert!(n > 0, "empty tree");
        let roots: Vec<usize> = (0..n).filter(|&i| parents[i].is_none()).collect();
        assert_eq!(
            roots.len(),
            1,
            "exactly one root required, found {}",
            roots.len()
        );
        let root = roots[0];
        let mut children = vec![Vec::new(); n];
        for (i, &p) in parents.iter().enumerate() {
            if let Some(p) = p {
                assert!(p < n, "parent {p} out of range");
                children[p].push(i);
            }
        }
        // Depths + acyclicity: BFS from the root must reach everyone.
        let mut depths = vec![u32::MAX; n];
        depths[root] = 0;
        let mut queue = std::collections::VecDeque::from([root]);
        let mut seen = 1;
        while let Some(u) = queue.pop_front() {
            for &c in &children[u] {
                assert_eq!(depths[c], u32::MAX, "node {c} reached twice (cycle)");
                depths[c] = depths[u] + 1;
                seen += 1;
                queue.push_back(c);
            }
        }
        assert_eq!(seen, n, "disconnected parent structure");
        VirtualTree {
            parents,
            children,
            depths,
            root,
        }
    }

    /// A balanced `k`-ary tree of the given depth (depth 0 = root only).
    pub fn balanced_kary(k: usize, depth: u32) -> Self {
        assert!(k >= 1);
        let mut parents = vec![None];
        let mut frontier = vec![0usize];
        for _ in 0..depth {
            let mut next = Vec::new();
            for &p in &frontier {
                for _ in 0..k {
                    let id = parents.len();
                    parents.push(Some(p));
                    next.push(id);
                }
            }
            frontier = next;
        }
        VirtualTree::from_parents(parents)
    }

    /// Number of virtual nodes.
    pub fn node_count(&self) -> usize {
        self.parents.len()
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Parent of `v` (`None` at the root).
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parents[v]
    }

    /// Children of `v`.
    pub fn children(&self, v: usize) -> &[usize] {
        &self.children[v]
    }

    /// Depth of `v` (root = 0).
    pub fn depth(&self, v: usize) -> u32 {
        self.depths[v]
    }

    /// Height of the tree (max depth).
    pub fn height(&self) -> u32 {
        self.depths.iter().copied().max().unwrap_or(0)
    }

    /// Leaves in index order.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.node_count())
            .filter(|&v| self.children[v].is_empty())
            .collect()
    }

    /// Hop distance between two nodes (through their lowest common
    /// ancestor) — the tree architecture's cost-model distance.
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        let (mut a, mut b) = (a, b);
        let mut d = 0;
        while self.depths[a] > self.depths[b] {
            a = self.parents[a].expect("non-root has parent");
            d += 1;
        }
        while self.depths[b] > self.depths[a] {
            b = self.parents[b].expect("non-root has parent");
            d += 1;
        }
        while a != b {
            a = self.parents[a].expect("lca exists");
            b = self.parents[b].expect("lca exists");
            d += 2;
        }
        d
    }
}

/// Builds a tree over a real deployment: the BFS spanning tree of the
/// unit-disk graph rooted at the node closest to the terrain centroid.
/// For clustered deployments this is the natural cluster-tree — edges are
/// radio links, so every tree hop is physically one hop. Returns `None`
/// when the graph is disconnected.
pub fn spanning_tree_from_positions(
    positions: &[wsn_net::Point],
    range: f64,
) -> Option<VirtualTree> {
    if positions.is_empty() {
        return None;
    }
    let graph = wsn_net::UnitDiskGraph::build(positions, range);
    let cx = positions.iter().map(|p| p.x).sum::<f64>() / positions.len() as f64;
    let cy = positions.iter().map(|p| p.y).sum::<f64>() / positions.len() as f64;
    let center = wsn_net::Point::new(cx, cy);
    let root = (0..positions.len())
        .min_by(|&a, &b| {
            positions[a]
                .distance(center)
                .partial_cmp(&positions[b].distance(center))
                .expect("finite distances")
        })
        .expect("non-empty");
    let mut parents: Vec<Option<usize>> = vec![None; positions.len()];
    let mut seen = vec![false; positions.len()];
    seen[root] = true;
    let mut queue = std::collections::VecDeque::from([root]);
    let mut reached = 1;
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                parents[v] = Some(u);
                reached += 1;
                queue.push_back(v);
            }
        }
    }
    (reached == positions.len()).then(|| VirtualTree::from_parents(parents))
}

/// Messages of the tree execution environment: payloads travel along tree
/// edges only (parent ↔ child), which is the tree architecture's
/// communication primitive.
pub struct TreeEnvelope<P> {
    /// Sending virtual tree node.
    pub from: usize,
    /// Application payload.
    pub payload: P,
}

impl<P: 'static> Payload for TreeEnvelope<P> {}

/// Capabilities of a program running on one tree node.
pub trait TreeApi<P> {
    /// This node's tree index.
    fn id(&self) -> usize;
    /// Parent, if any.
    fn parent(&self) -> Option<usize>;
    /// Number of children.
    fn child_count(&self) -> usize;
    /// This node's sensor reading.
    fn read_sensor(&mut self) -> f64;
    /// Charges computation.
    fn compute(&mut self, units: u64);
    /// Sends along a tree edge (dest must be this node's parent or child).
    fn send(&mut self, dest: usize, units: u64, payload: P);
    /// Delivers a result out of the network.
    fn exfiltrate(&mut self, payload: P);
}

/// A node program for the tree architecture.
pub trait TreeProgram<P>: 'static {
    /// Fired once at start.
    fn on_init(&mut self, api: &mut dyn TreeApi<P>);
    /// Fired per received message.
    fn on_receive(&mut self, api: &mut dyn TreeApi<P>, from: usize, payload: P);
}

struct TreeShared<P> {
    tree: VirtualTree,
    cost: CostModel,
    ledger: RefCell<EnergyLedger>,
    exfil: RefCell<Vec<(usize, SimTime, P)>>,
    field: Box<dyn Fn(usize) -> f64>,
    actors: RefCell<Vec<ActorId>>,
}

struct TreeNode<P: 'static> {
    id: usize,
    program: Box<dyn TreeProgram<P>>,
    shared: Rc<TreeShared<P>>,
}

struct TreeNodeApi<'a, 'b, P: 'static> {
    id: usize,
    shared: &'a TreeShared<P>,
    ctx: &'a mut Context<'b, TreeEnvelope<P>>,
}

impl<P: 'static> TreeApi<P> for TreeNodeApi<'_, '_, P> {
    fn id(&self) -> usize {
        self.id
    }

    fn parent(&self) -> Option<usize> {
        self.shared.tree.parent(self.id)
    }

    fn child_count(&self) -> usize {
        self.shared.tree.children(self.id).len()
    }

    fn read_sensor(&mut self) -> f64 {
        (self.shared.field)(self.id)
    }

    fn compute(&mut self, units: u64) {
        self.shared.ledger.borrow_mut().charge(
            self.id,
            EnergyKind::Compute,
            self.shared.cost.compute(units),
        );
    }

    fn send(&mut self, dest: usize, units: u64, payload: P) {
        let tree = &self.shared.tree;
        let is_edge = tree.parent(self.id) == Some(dest) || tree.parent(dest) == Some(self.id);
        assert!(
            is_edge,
            "tree sends travel along edges: {} -> {dest}",
            self.id
        );
        {
            let mut ledger = self.shared.ledger.borrow_mut();
            let cost = &self.shared.cost;
            ledger.charge(self.id, EnergyKind::Tx, units as f64 * cost.tx_energy);
            ledger.charge(dest, EnergyKind::Rx, units as f64 * cost.rx_energy);
        }
        self.ctx.stats().incr("treevm.messages");
        self.ctx.stats().add("treevm.data_units", units);
        let delay = SimTime::from_ticks(self.shared.cost.hop_ticks(units));
        let target = self.shared.actors.borrow()[dest];
        self.ctx.send(
            target,
            delay,
            TreeEnvelope {
                from: self.id,
                payload,
            },
        );
    }

    fn exfiltrate(&mut self, payload: P) {
        self.shared
            .exfil
            .borrow_mut()
            .push((self.id, self.ctx.now(), payload));
    }
}

impl<P: 'static> Actor<TreeEnvelope<P>> for TreeNode<P> {
    fn on_timer(&mut self, ctx: &mut Context<'_, TreeEnvelope<P>>, _tag: u64) {
        let mut api = TreeNodeApi {
            id: self.id,
            shared: &self.shared,
            ctx,
        };
        self.program.on_init(&mut api);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, TreeEnvelope<P>>,
        _from: ActorId,
        msg: TreeEnvelope<P>,
    ) {
        let mut api = TreeNodeApi {
            id: self.id,
            shared: &self.shared,
            ctx,
        };
        self.program.on_receive(&mut api, msg.from, msg.payload);
    }
}

/// Executes tree programs on an ideal [`VirtualTree`].
pub struct TreeVm<P: 'static> {
    kernel: Kernel<TreeEnvelope<P>>,
    shared: Rc<TreeShared<P>>,
}

impl<P: 'static> TreeVm<P> {
    /// Builds the VM; `field` gives each tree node's reading, `factory`
    /// each node's program.
    pub fn new(
        tree: VirtualTree,
        cost: CostModel,
        seed: u64,
        field: impl Fn(usize) -> f64 + 'static,
        mut factory: impl FnMut(usize) -> Box<dyn TreeProgram<P>>,
    ) -> Self {
        let n = tree.node_count();
        let shared = Rc::new(TreeShared {
            tree,
            cost,
            ledger: RefCell::new(EnergyLedger::unlimited(n)),
            exfil: RefCell::new(Vec::new()),
            field: Box::new(field),
            actors: RefCell::new(Vec::with_capacity(n)),
        });
        let mut kernel: Kernel<TreeEnvelope<P>> = Kernel::new(seed);
        for id in 0..n {
            let a = kernel.add_actor(Box::new(TreeNode {
                id,
                program: factory(id),
                shared: shared.clone(),
            }));
            shared.actors.borrow_mut().push(a);
            kernel.schedule_timer(SimTime::ZERO, a, 0);
        }
        TreeVm { kernel, shared }
    }

    /// The topology.
    pub fn tree(&self) -> &VirtualTree {
        &self.shared.tree
    }

    /// Runs to quiescence; returns `(latency of last exfiltration, total
    /// energy, messages)`.
    pub fn run(&mut self) -> (u64, f64, u64) {
        self.kernel.run();
        let latency = self
            .shared
            .exfil
            .borrow()
            .iter()
            .map(|&(_, at, _)| at)
            .max()
            .unwrap_or(self.kernel.now())
            .ticks();
        (
            latency,
            self.shared.ledger.borrow().total(),
            self.kernel.stats().counter("treevm.messages"),
        )
    }

    /// Removes and returns everything exfiltrated.
    pub fn take_exfiltrated(&mut self) -> Vec<(usize, SimTime, P)> {
        std::mem::take(&mut self.shared.exfil.borrow_mut())
    }
}

/// Convergecast aggregation: every node contributes its reading; interior
/// nodes combine all children's partials with their own; the root
/// exfiltrates `(sum, count)`.
pub struct ConvergecastSum {
    expected: usize,
    received: usize,
    sum: f64,
    count: u64,
    started: bool,
}

impl ConvergecastSum {
    /// A program instance for a node with `child_count` children.
    pub fn new(child_count: usize) -> Self {
        ConvergecastSum {
            expected: child_count,
            received: 0,
            sum: 0.0,
            count: 0,
            started: false,
        }
    }

    fn maybe_forward(&mut self, api: &mut dyn TreeApi<(f64, u64)>) {
        if self.started && self.received == self.expected {
            match api.parent() {
                Some(p) => api.send(p, 1, (self.sum, self.count)),
                None => api.exfiltrate((self.sum, self.count)),
            }
        }
    }
}

impl TreeProgram<(f64, u64)> for ConvergecastSum {
    fn on_init(&mut self, api: &mut dyn TreeApi<(f64, u64)>) {
        self.sum += api.read_sensor();
        self.count += 1;
        api.compute(1);
        self.started = true;
        self.maybe_forward(api);
    }

    fn on_receive(&mut self, api: &mut dyn TreeApi<(f64, u64)>, _from: usize, payload: (f64, u64)) {
        api.compute(1);
        self.sum += payload.0;
        self.count += payload.1;
        self.received += 1;
        self.maybe_forward(api);
    }
}

/// Closed-form estimate of convergecast on `tree` with `units`-sized
/// partials: every non-root node transmits once over one hop (energy
/// `2·units` with the uniform model), and the critical path is the tree
/// height.
pub fn tree_convergecast_estimate(tree: &VirtualTree, cost: &CostModel, units: u64) -> Estimate {
    let edges = (tree.node_count() - 1) as u64;
    Estimate {
        latency_ticks: u64::from(tree.height()) * cost.hop_ticks(units),
        total_energy: edges as f64 * units as f64 * (cost.tx_energy + cost.rx_energy)
            + tree.node_count() as f64 * cost.compute(1)     // leaf/init computes
            + edges as f64 * cost.compute(1), // one merge per received partial
        messages: edges,
        data_units: edges * units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parents_builds_structure() {
        //      0
        //    / | \
        //   1  2  3
        //      |
        //      4
        let t = VirtualTree::from_parents(vec![None, Some(0), Some(0), Some(0), Some(2)]);
        assert_eq!(t.root(), 0);
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.children(0), &[1, 2, 3]);
        assert_eq!(t.parent(4), Some(2));
        assert_eq!(t.depth(4), 2);
        assert_eq!(t.height(), 2);
        assert_eq!(t.leaves(), vec![1, 3, 4]);
    }

    #[test]
    fn hops_through_lca() {
        let t = VirtualTree::from_parents(vec![None, Some(0), Some(0), Some(1), Some(1), Some(2)]);
        assert_eq!(t.hops(3, 4), 2); // siblings under 1
        assert_eq!(t.hops(3, 5), 4); // via the root
        assert_eq!(t.hops(0, 5), 2);
        assert_eq!(t.hops(3, 3), 0);
        assert_eq!(t.hops(3, 1), 1);
    }

    #[test]
    fn balanced_kary_counts() {
        let t = VirtualTree::balanced_kary(4, 2);
        assert_eq!(t.node_count(), 1 + 4 + 16);
        assert_eq!(t.height(), 2);
        assert_eq!(t.leaves().len(), 16);
        let t1 = VirtualTree::balanced_kary(3, 0);
        assert_eq!(t1.node_count(), 1);
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn two_roots_panic() {
        VirtualTree::from_parents(vec![None, None]);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn cycle_panics() {
        // 1 and 2 point at each other; unreachable from root 0.
        VirtualTree::from_parents(vec![None, Some(2), Some(1)]);
    }

    #[test]
    fn convergecast_sums_exactly() {
        for (k, depth) in [(2usize, 3u32), (4, 2), (3, 1), (1, 4)] {
            let tree = VirtualTree::balanced_kary(k, depth);
            let n = tree.node_count();
            let t2 = tree.clone();
            let mut vm = TreeVm::new(
                tree,
                CostModel::uniform(),
                1,
                |id| id as f64,
                move |id| Box::new(ConvergecastSum::new(t2.children(id).len())),
            );
            let (latency, energy, messages) = vm.run();
            let results = vm.take_exfiltrated();
            assert_eq!(results.len(), 1);
            let (root, _, (sum, count)) = &results[0];
            assert_eq!(*root, 0);
            assert_eq!(*count, n as u64);
            assert_eq!(*sum, (0..n).map(|i| i as f64).sum::<f64>());
            // Exact match with the closed form.
            let est = tree_convergecast_estimate(vm.tree(), &CostModel::uniform(), 1);
            assert_eq!(latency, est.latency_ticks, "k={k} depth={depth}");
            assert!(
                (energy - est.total_energy).abs() < 1e-9,
                "k={k} depth={depth}"
            );
            assert_eq!(messages, est.messages);
        }
    }

    #[test]
    fn spanning_tree_over_clustered_deployment() {
        use wsn_net::{DeploymentSpec, Placement};
        let spec = DeploymentSpec {
            terrain_side: 60.0,
            cells_per_side: 6,
            placement: Placement::Clustered {
                clusters: 4,
                per_cluster: 20,
                spread: 4.0,
            },
            ensure_coverage: false,
        };
        let d = spec.generate(7);
        // A generous range keeps the clustered graph connected.
        let tree = spanning_tree_from_positions(d.positions(), 25.0)
            .expect("clustered deployment connected at range 25");
        assert_eq!(tree.node_count(), d.node_count());
        // Convergecast over the physical spanning tree sums every node.
        let t2 = tree.clone();
        let n = tree.node_count();
        let mut vm = TreeVm::new(
            tree,
            CostModel::uniform(),
            1,
            |_| 1.0,
            move |id| Box::new(ConvergecastSum::new(t2.children(id).len())),
        );
        let (latency, _, messages) = vm.run();
        let (_, _, (sum, count)) = vm.take_exfiltrated().pop().unwrap();
        assert_eq!(count, n as u64);
        assert_eq!(sum, n as f64);
        assert_eq!(messages, (n - 1) as u64);
        assert_eq!(latency, u64::from(vm.tree().height()));
    }

    #[test]
    fn disconnected_positions_yield_no_tree() {
        let far = [
            wsn_net::Point::new(0.0, 0.0),
            wsn_net::Point::new(100.0, 0.0),
        ];
        assert!(spanning_tree_from_positions(&far, 1.0).is_none());
        assert!(spanning_tree_from_positions(&[], 1.0).is_none());
    }

    #[test]
    fn irregular_tree_convergecast() {
        // A lopsided tree: a path of 4 plus a bushy node.
        let tree = VirtualTree::from_parents(vec![
            None,
            Some(0),
            Some(1),
            Some(2),
            Some(0),
            Some(4),
            Some(4),
            Some(4),
        ]);
        let t2 = tree.clone();
        let mut vm = TreeVm::new(
            tree,
            CostModel::uniform(),
            1,
            |_| 1.0,
            move |id| Box::new(ConvergecastSum::new(t2.children(id).len())),
        );
        vm.run();
        let (_, _, (sum, count)) = vm.take_exfiltrated().pop().unwrap();
        assert_eq!(count, 8);
        assert_eq!(sum, 8.0);
    }

    #[test]
    #[should_panic(expected = "travel along edges")]
    fn non_edge_send_panics() {
        struct Bad;
        impl TreeProgram<(f64, u64)> for Bad {
            fn on_init(&mut self, api: &mut dyn TreeApi<(f64, u64)>) {
                if api.id() == 3 {
                    api.send(4, 1, (0.0, 0)); // 3 and 4 are cousins, not an edge
                }
            }
            fn on_receive(&mut self, _: &mut dyn TreeApi<(f64, u64)>, _: usize, _: (f64, u64)) {}
        }
        let tree = VirtualTree::from_parents(vec![None, Some(0), Some(0), Some(1), Some(2)]);
        let mut vm = TreeVm::new(tree, CostModel::uniform(), 1, |_| 0.0, |_| Box::new(Bad));
        vm.run();
    }
}
