//! Performance metrics derived from a run.
//!
//! §3.2: "total energy, energy balance, total latency of a set of
//! operations, system lifetime, etc., are various performance metrics that
//! can be calculated from the cost model, but which of these to use will
//! depend on the algorithm designer's objective." [`RunMetrics`] packages
//! all of them so each experiment picks its objective.

use serde::{Deserialize, Serialize};
use wsn_net::EnergyLedger;
use wsn_obs::Registry;

/// Canonical telemetry counter for application messages sent; platforms
/// that publish to a [`Registry`] record under this name so
/// [`RunMetrics::from_registry`] can read it back.
pub const CTR_MESSAGES: &str = "net.messages";
/// Canonical telemetry counter for application data units moved.
pub const CTR_DATA_UNITS: &str = "net.data_units";

/// The standard metric bundle the harness reports for every run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// End-to-end latency in ticks (e.g. start of sensing to final
    /// exfiltration).
    pub latency_ticks: u64,
    /// Network-wide energy consumed.
    pub total_energy: f64,
    /// Hotspot: the single largest per-node consumption.
    pub max_node_energy: f64,
    /// Mean per-node consumption.
    pub mean_node_energy: f64,
    /// Jain fairness index of per-node consumption (1 = balanced).
    pub energy_balance: f64,
    /// Application messages sent.
    pub messages: u64,
    /// Application data units moved.
    pub data_units: u64,
}

impl RunMetrics {
    /// Builds the bundle from an energy ledger plus harness-tracked
    /// latency and traffic totals.
    pub fn from_ledger(
        ledger: &EnergyLedger,
        latency_ticks: u64,
        messages: u64,
        data_units: u64,
    ) -> Self {
        RunMetrics {
            latency_ticks,
            total_energy: ledger.total(),
            max_node_energy: ledger.max_consumed(),
            mean_node_energy: ledger.mean_consumed(),
            energy_balance: ledger.jain_fairness(),
            messages,
            data_units,
        }
    }

    /// Builds the bundle by reading the canonical traffic counters
    /// ([`CTR_MESSAGES`], [`CTR_DATA_UNITS`]) from a telemetry registry.
    /// A disabled registry reads as zero traffic, so callers can pass the
    /// same registry handle whether or not telemetry is on.
    pub fn from_registry(registry: &Registry, ledger: &EnergyLedger, latency_ticks: u64) -> Self {
        Self::from_ledger(
            ledger,
            latency_ticks,
            registry.counter(CTR_MESSAGES),
            registry.counter(CTR_DATA_UNITS),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_net::EnergyKind;

    #[test]
    fn from_ledger_summarizes() {
        let mut l = EnergyLedger::unlimited(4);
        l.charge(0, EnergyKind::Tx, 8.0);
        l.charge(1, EnergyKind::Rx, 4.0);
        let m = RunMetrics::from_ledger(&l, 17, 3, 12);
        assert_eq!(m.latency_ticks, 17);
        assert_eq!(m.total_energy, 12.0);
        assert_eq!(m.max_node_energy, 8.0);
        assert_eq!(m.mean_node_energy, 3.0);
        assert_eq!(m.messages, 3);
        assert_eq!(m.data_units, 12);
        assert!(m.energy_balance < 1.0);
    }

    #[test]
    fn from_registry_reads_canonical_counters() {
        let mut l = EnergyLedger::unlimited(2);
        l.charge(0, EnergyKind::Tx, 2.0);
        let reg = Registry::enabled();
        reg.incr_by(CTR_MESSAGES, 7);
        reg.incr_by(CTR_DATA_UNITS, 21);
        let m = RunMetrics::from_registry(&reg, &l, 5);
        assert_eq!(m.messages, 7);
        assert_eq!(m.data_units, 21);
        assert_eq!(m.latency_ticks, 5);
        assert_eq!(m.total_energy, 2.0);
        // A disabled registry degrades to zero traffic, not a panic.
        let off = RunMetrics::from_registry(&Registry::disabled(), &l, 5);
        assert_eq!(off.messages, 0);
    }

    #[test]
    fn balanced_ledger_scores_one() {
        let mut l = EnergyLedger::unlimited(3);
        for i in 0..3 {
            l.charge(i, EnergyKind::Compute, 2.0);
        }
        let m = RunMetrics::from_ledger(&l, 0, 0, 0);
        assert!((m.energy_balance - 1.0).abs() < 1e-12);
        assert_eq!(m.max_node_energy, m.mean_node_energy);
    }
}
