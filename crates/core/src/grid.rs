//! The virtual network model: an oriented two-dimensional grid.
//!
//! §3.2: "our virtual architecture in this case study abstracts the
//! underlying network topology as an oriented, two-dimensional grid." Each
//! vertex is one *point of coverage*; the orientation gives every node the
//! four compass directions used both by the routing tables of the topology
//! emulation protocol and by dimension-order routing between virtual
//! nodes.

use serde::{Deserialize, Serialize};

/// Coordinates of a virtual grid node. Re-exported from `wsn-net`'s cell
/// coordinates: virtual node `(col, row)` *is* the cell `(col, row)` of the
/// terrain partition — the identification the runtime's topology emulation
/// realizes.
pub type GridCoord = wsn_net::CellCoord;

/// The four directions of the oriented grid (the paper's `DIR` set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Row − 1.
    North,
    /// Column + 1.
    East,
    /// Row + 1.
    South,
    /// Column − 1.
    West,
}

impl Direction {
    /// All four directions, in N-E-S-W order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The opposite direction.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }
}

/// An `m × m` oriented grid of virtual nodes.
///
/// ```
/// use wsn_core::{GridCoord, VirtualGrid};
///
/// let g = VirtualGrid::new(4);
/// let a = GridCoord::new(0, 0);
/// let b = GridCoord::new(2, 3);
/// assert_eq!(g.hops(a, b), 5);
/// assert_eq!(g.route(a, b).len(), 5); // dimension-order shortest path
/// assert_eq!(g.index(b), 14);         // row-major
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualGrid {
    side: u32,
}

impl VirtualGrid {
    /// An `side × side` grid.
    pub fn new(side: u32) -> Self {
        assert!(side > 0, "grid side must be positive");
        VirtualGrid { side }
    }

    /// Nodes per side, `m` (the paper's √N).
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Total virtual nodes, `N = m²`.
    pub fn node_count(&self) -> usize {
        (self.side as usize).pow(2)
    }

    /// Whether `c` is a node of this grid.
    pub fn contains(&self, c: GridCoord) -> bool {
        c.col < self.side && c.row < self.side
    }

    /// Row-major index of `c` (matches the paper's Figure 3 numbering for
    /// the 4×4 example: location = row·m + col).
    pub fn index(&self, c: GridCoord) -> usize {
        assert!(self.contains(c), "{c:?} outside {0}×{0} grid", self.side);
        c.row as usize * self.side as usize + c.col as usize
    }

    /// Inverse of [`VirtualGrid::index`].
    pub fn coord(&self, index: usize) -> GridCoord {
        assert!(index < self.node_count(), "index {index} out of range");
        GridCoord::new(
            (index % self.side as usize) as u32,
            (index / self.side as usize) as u32,
        )
    }

    /// The neighbor of `c` in direction `dir`, if it exists.
    pub fn neighbor(&self, c: GridCoord, dir: Direction) -> Option<GridCoord> {
        let (col, row) = (i64::from(c.col), i64::from(c.row));
        let (ncol, nrow) = match dir {
            Direction::North => (col, row - 1),
            Direction::East => (col + 1, row),
            Direction::South => (col, row + 1),
            Direction::West => (col - 1, row),
        };
        (ncol >= 0 && nrow >= 0 && ncol < i64::from(self.side) && nrow < i64::from(self.side))
            .then(|| GridCoord::new(ncol as u32, nrow as u32))
    }

    /// All existing neighbors of `c`, in N-E-S-W order.
    pub fn neighbors(&self, c: GridCoord) -> Vec<GridCoord> {
        Direction::ALL
            .iter()
            .filter_map(|&d| self.neighbor(c, d))
            .collect()
    }

    /// Shortest-path hop distance (Manhattan metric — the cost the group
    /// middleware quotes for follower→leader traffic, §4.2).
    pub fn hops(&self, a: GridCoord, b: GridCoord) -> u32 {
        debug_assert!(self.contains(a) && self.contains(b));
        a.manhattan(b)
    }

    /// Next hop of dimension-order (column-first) routing from `from`
    /// toward `to`; `None` when already there. Deterministic, loop-free,
    /// and shortest-path on the grid.
    pub fn next_hop(&self, from: GridCoord, to: GridCoord) -> Option<GridCoord> {
        assert!(self.contains(from) && self.contains(to));
        let dir = if from.col < to.col {
            Direction::East
        } else if from.col > to.col {
            Direction::West
        } else if from.row < to.row {
            Direction::South
        } else if from.row > to.row {
            Direction::North
        } else {
            return None;
        };
        Some(self.neighbor(from, dir).expect("in-bounds next hop"))
    }

    /// The full dimension-order route from `from` to `to`, excluding
    /// `from`, including `to`. Empty when they coincide.
    pub fn route(&self, from: GridCoord, to: GridCoord) -> Vec<GridCoord> {
        let mut path = Vec::with_capacity(self.hops(from, to) as usize);
        let mut cur = from;
        while let Some(next) = self.next_hop(cur, to) {
            path.push(next);
            cur = next;
        }
        path
    }

    /// Iterates all nodes in row-major order.
    pub fn nodes(&self) -> impl Iterator<Item = GridCoord> + '_ {
        let side = self.side;
        (0..side).flat_map(move |row| (0..side).map(move |col| GridCoord::new(col, row)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip_row_major() {
        let g = VirtualGrid::new(4);
        assert_eq!(g.index(GridCoord::new(0, 0)), 0);
        assert_eq!(g.index(GridCoord::new(3, 0)), 3);
        assert_eq!(g.index(GridCoord::new(0, 1)), 4);
        assert_eq!(g.index(GridCoord::new(3, 3)), 15);
        for i in 0..16 {
            assert_eq!(g.index(g.coord(i)), i);
        }
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let g = VirtualGrid::new(3);
        let nw = GridCoord::new(0, 0);
        assert_eq!(g.neighbor(nw, Direction::North), None);
        assert_eq!(g.neighbor(nw, Direction::West), None);
        assert_eq!(g.neighbor(nw, Direction::East), Some(GridCoord::new(1, 0)));
        assert_eq!(g.neighbor(nw, Direction::South), Some(GridCoord::new(0, 1)));
        assert_eq!(g.neighbors(nw).len(), 2);
        assert_eq!(g.neighbors(GridCoord::new(1, 1)).len(), 4);
        let se = GridCoord::new(2, 2);
        assert_eq!(
            g.neighbors(se),
            vec![GridCoord::new(2, 1), GridCoord::new(1, 2)]
        );
    }

    #[test]
    fn direction_opposites() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn route_is_column_first() {
        let g = VirtualGrid::new(5);
        let path = g.route(GridCoord::new(0, 0), GridCoord::new(2, 2));
        assert_eq!(
            path,
            vec![
                GridCoord::new(1, 0),
                GridCoord::new(2, 0),
                GridCoord::new(2, 1),
                GridCoord::new(2, 2),
            ]
        );
    }

    #[test]
    fn route_length_equals_hops() {
        let g = VirtualGrid::new(8);
        for a in g.nodes() {
            let b = GridCoord::new(5, 2);
            assert_eq!(g.route(a, b).len() as u32, g.hops(a, b));
        }
    }

    #[test]
    fn route_to_self_is_empty() {
        let g = VirtualGrid::new(4);
        let c = GridCoord::new(2, 3);
        assert!(g.route(c, c).is_empty());
        assert_eq!(g.next_hop(c, c), None);
    }

    #[test]
    fn nodes_enumerates_all() {
        let g = VirtualGrid::new(3);
        let all: Vec<GridCoord> = g.nodes().collect();
        assert_eq!(all.len(), 9);
        assert_eq!(all[0], GridCoord::new(0, 0));
        assert_eq!(all[8], GridCoord::new(2, 2));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn index_out_of_bounds_panics() {
        VirtualGrid::new(2).index(GridCoord::new(2, 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_side_panics() {
        VirtualGrid::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Dimension-order routes never leave the grid, never revisit a
        /// node, and reach the destination in exactly `hops` steps.
        #[test]
        fn routes_are_simple_shortest_paths(
            side in 1u32..12,
            ac in 0u32..12, ar in 0u32..12,
            bc in 0u32..12, br in 0u32..12,
        ) {
            let g = VirtualGrid::new(side);
            let a = GridCoord::new(ac % side, ar % side);
            let b = GridCoord::new(bc % side, br % side);
            let path = g.route(a, b);
            prop_assert_eq!(path.len() as u32, g.hops(a, b));
            let mut prev = a;
            let mut seen = std::collections::HashSet::new();
            seen.insert(a);
            for &step in &path {
                prop_assert!(g.contains(step));
                prop_assert_eq!(prev.manhattan(step), 1);
                prop_assert!(seen.insert(step), "revisited {:?}", step);
                prev = step;
            }
            if !path.is_empty() {
                prop_assert_eq!(*path.last().unwrap(), b);
            }
        }
    }
}
