//! The certified wire-frame layout — the single source of truth shared by
//! the zero-copy codec (`wsn-runtime`) and the frame-layout certifier
//! (`wsn-analyze` pass 7).
//!
//! One fixed frame geometry carries every `RtMsg` variant: a tagged
//! 80-byte header whose slots are unioned across variants, the causal
//! stamp at a *variant-independent* offset (so relays re-stamp in place
//! without decoding), and a bounded payload region sized by the §4
//! closed-form payload analysis. The certifier checks this table — slot
//! disjointness, alignment, stamp width, and that every reachable send
//! site's payload bound fits [`wsn_net::FRAME_PAYLOAD_CAPACITY`] — and
//! refuses the zero-copy runtime configuration otherwise.

use crate::estimate::full_boundary_units;
// Re-exported so crates above the virtual architecture (e.g. `wsn-synth`,
// `wsn-analyze`) can implement bounded payload encodings and check the
// frame geometry without a direct `wsn-net` edge.
pub use wsn_net::{
    WireError, WirePayload, FRAME_BYTES, FRAME_HEADER_BYTES, FRAME_PAYLOAD_CAPACITY,
};

/// Schema version of the layout table (bumped on any offset change; the
/// frame certificate embeds it so stale certificates are rejected).
pub const FRAME_LAYOUT_VERSION: u64 = 1;

/// One named field of the frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameField {
    /// Field name as it appears in the certificate's layout table.
    pub name: &'static str,
    /// Byte offset from the start of the frame.
    pub offset: usize,
    /// Width in bytes.
    pub width: usize,
    /// Required alignment of `offset` (the widest scalar inside the
    /// field: 4 for the `(col, row)` cell pairs, else the width).
    pub align: usize,
}

impl FrameField {
    const fn new(name: &'static str, offset: usize, width: usize, align: usize) -> Self {
        FrameField {
            name,
            offset,
            width,
            align,
        }
    }

    /// First byte past the field.
    pub fn end(&self) -> usize {
        self.offset + self.width
    }
}

/// Offset of the variant tag byte (equals the kernel discriminant).
pub const TAG_OFFSET: usize = 0;
/// Offset of the layout version byte.
pub const VERSION_OFFSET: usize = 1;
/// Offset of the `u16` payload length.
pub const PAYLOAD_LEN_OFFSET: usize = 2;
/// Offset of the first cell slot (sender / source cell), `(col, row)` as
/// two `u32`s.
pub const CELL_A_OFFSET: usize = 4;
/// Offset of the second cell slot (destination cell).
pub const CELL_B_OFFSET: usize = 12;
/// Offset of the `u32` application round.
pub const ROUND_OFFSET: usize = 20;
/// Offset of the `u64` payload size in data units.
pub const UNITS_OFFSET: usize = 24;
/// Offset of the `u64` origin / primary node-id slot.
pub const ORIGIN_OFFSET: usize = 32;
/// Offset of the `u64` message-id slot.
pub const MSG_ID_OFFSET: usize = 40;
/// Offset of the first auxiliary `u64` slot (ARQ/heartbeat/ack sequence,
/// topology direction bits, announce hop count).
pub const AUX_A_OFFSET: usize = 48;
/// Offset of the second auxiliary `u64` slot (hop sender, leader id,
/// candidate id, or a scalar reading's bit pattern).
pub const AUX_B_OFFSET: usize = 56;
/// Offset of the causal stamp's send sequence — fixed across all stamped
/// variants so relays write it in place without decoding the frame.
pub const STAMP_SEQ_OFFSET: usize = 64;
/// Offset of the causal stamp's Lamport clock.
pub const STAMP_LAMPORT_OFFSET: usize = 72;
/// Width in bytes of each causal-stamp component.
pub const STAMP_WIDTH_BYTES: usize = 8;
/// Offset of the payload region (must equal the header size declared by
/// `wsn_net`).
pub const PAYLOAD_OFFSET: usize = FRAME_HEADER_BYTES;

/// The full header field table, in offset order.
pub const HEADER_FIELDS: &[FrameField] = &[
    FrameField::new("tag", TAG_OFFSET, 1, 1),
    FrameField::new("version", VERSION_OFFSET, 1, 1),
    FrameField::new("payload_len", PAYLOAD_LEN_OFFSET, 2, 2),
    FrameField::new("cell_a", CELL_A_OFFSET, 8, 4),
    FrameField::new("cell_b", CELL_B_OFFSET, 8, 4),
    FrameField::new("round", ROUND_OFFSET, 4, 4),
    FrameField::new("units", UNITS_OFFSET, 8, 8),
    FrameField::new("origin", ORIGIN_OFFSET, 8, 8),
    FrameField::new("msg_id", MSG_ID_OFFSET, 8, 8),
    FrameField::new("aux_a", AUX_A_OFFSET, 8, 8),
    FrameField::new("aux_b", AUX_B_OFFSET, 8, 8),
    FrameField::new("stamp_seq", STAMP_SEQ_OFFSET, STAMP_WIDTH_BYTES, 8),
    FrameField::new("stamp_lamport", STAMP_LAMPORT_OFFSET, STAMP_WIDTH_BYTES, 8),
];

/// How one `RtMsg` variant maps onto the header slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariantLayout {
    /// The tag byte (equals the kernel discriminant).
    pub tag: u8,
    /// Variant name.
    pub name: &'static str,
    /// Names of the header slots the variant occupies (besides the three
    /// mandatory bookkeeping fields `tag`/`version`/`payload_len`).
    pub slots: &'static [&'static str],
    /// Whether the variant carries application payload bytes.
    pub carries_payload: bool,
    /// Whether the variant carries a causal stamp (written in place at
    /// [`STAMP_SEQ_OFFSET`]/[`STAMP_LAMPORT_OFFSET`]).
    pub stamped: bool,
}

/// The eight `RtMsg` variants and their slot usage.
pub const RTMSG_VARIANTS: &[VariantLayout] = &[
    VariantLayout {
        tag: 1,
        name: "Topo",
        slots: &["cell_a", "origin", "aux_a"],
        carries_payload: false,
        stamped: false,
    },
    VariantLayout {
        tag: 2,
        name: "Delta",
        slots: &["cell_a", "aux_b", "origin"],
        carries_payload: false,
        stamped: false,
    },
    VariantLayout {
        tag: 3,
        name: "Announce",
        slots: &["cell_a", "origin", "aux_a", "aux_b"],
        carries_payload: false,
        stamped: false,
    },
    VariantLayout {
        tag: 4,
        name: "App",
        slots: &[
            "cell_a",
            "cell_b",
            "round",
            "units",
            "origin",
            "msg_id",
            "stamp_seq",
            "stamp_lamport",
        ],
        carries_payload: true,
        stamped: true,
    },
    VariantLayout {
        tag: 5,
        name: "AppArq",
        slots: &[
            "cell_a",
            "cell_b",
            "round",
            "units",
            "origin",
            "msg_id",
            "aux_a",
            "aux_b",
            "stamp_seq",
            "stamp_lamport",
        ],
        carries_payload: true,
        stamped: true,
    },
    VariantLayout {
        tag: 6,
        name: "Ack",
        slots: &["aux_a", "origin"],
        carries_payload: false,
        stamped: false,
    },
    VariantLayout {
        tag: 7,
        name: "Sample",
        slots: &["cell_a", "aux_b"],
        carries_payload: false,
        stamped: false,
    },
    VariantLayout {
        tag: 8,
        name: "Heartbeat",
        slots: &["cell_a", "origin", "aux_a"],
        carries_payload: false,
        stamped: false,
    },
];

/// Structural upper bound, in bytes, of the wire encoding of one boundary
/// summary over a square extent of `extent_side` cells:
///
/// * 16 bytes of summary-message header (sender cell, level, kind, pad),
/// * 24 bytes of boundary header (origin, extent side, three lengths, pad),
/// * 4 bytes per border cell (`perim = 4·s − 4`, or 1 for `s = 1`),
/// * 8 bytes per open region (at most one per border cell),
/// * 8 bytes per closed region (disjoint components of at least one cell
///   each — at most `⌈s²/2⌉`, the checkerboard maximum).
pub fn summary_wire_bound_bytes(extent_side: u32) -> u64 {
    let s = u64::from(extent_side);
    let perim = if s <= 1 { 1 } else { 4 * s - 4 };
    let closed_max = s * s / 2 + (s * s) % 2;
    16 + 24 + perim * 4 + perim * 8 + closed_max * 8
}

/// Upper bound, in bytes, of the payload a send site at data level
/// `level` can emit: the wire form of a full boundary summary over the
/// `2^level`-sided extent the §4 `PayloadProfile` prices at
/// [`full_boundary_units`]`(level)` data units.
pub fn payload_bound_bytes(level: u8) -> u64 {
    summary_wire_bound_bytes(1u32 << level)
}

/// The §4 closed-form payload size, in data units, for the same level —
/// re-exported next to the byte bound so the certifier can cross-check
/// its byte table against `certify.rs`'s data-unit totals.
pub fn payload_bound_units(level: u8) -> u64 {
    full_boundary_units(level)
}

/// Whether a deployment of grid side `side` fits the fixed frame: the
/// largest value on the wire is the root exfiltration's summary over the
/// full `side × side` extent.
pub fn framed_payload_fits(side: u32) -> bool {
    summary_wire_bound_bytes(side) <= FRAME_PAYLOAD_CAPACITY as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_fields_are_disjoint_ordered_and_aligned() {
        let mut end = 0;
        for f in HEADER_FIELDS {
            assert!(f.offset >= end, "field {} overlaps its predecessor", f.name);
            assert_eq!(f.offset % f.align, 0, "field {} is misaligned", f.name);
            end = f.end();
        }
        assert!(end <= PAYLOAD_OFFSET, "header spills into the payload");
        assert_eq!(PAYLOAD_OFFSET, FRAME_HEADER_BYTES);
        assert_eq!(
            wsn_net::FRAME_BYTES - PAYLOAD_OFFSET,
            FRAME_PAYLOAD_CAPACITY
        );
    }

    #[test]
    fn every_variant_maps_onto_declared_slots() {
        let names: Vec<&str> = HEADER_FIELDS.iter().map(|f| f.name).collect();
        let mut tags = std::collections::BTreeSet::new();
        for v in RTMSG_VARIANTS {
            assert!(tags.insert(v.tag), "duplicate tag {}", v.tag);
            assert!(v.tag > 0, "tag 0 is reserved for 'empty'");
            for slot in v.slots {
                assert!(names.contains(slot), "{}: unknown slot {slot}", v.name);
            }
            assert_eq!(
                v.stamped,
                v.slots.contains(&"stamp_seq"),
                "{}: stamp flag and slots disagree",
                v.name
            );
        }
        assert_eq!(RTMSG_VARIANTS.len(), 8);
    }

    #[test]
    fn stamp_offsets_are_variant_independent_and_eight_byte() {
        assert_eq!(STAMP_SEQ_OFFSET % 8, 0);
        assert_eq!(STAMP_LAMPORT_OFFSET, STAMP_SEQ_OFFSET + STAMP_WIDTH_BYTES);
        assert_eq!(STAMP_WIDTH_BYTES, 8, "CausalStamp fields are u64");
        const { assert!(STAMP_LAMPORT_OFFSET + STAMP_WIDTH_BYTES <= PAYLOAD_OFFSET) };
    }

    #[test]
    fn payload_bounds_follow_the_closed_form() {
        // Level 0: a leaf summary (1 cell). Levels grow with the extent.
        assert_eq!(summary_wire_bound_bytes(1), 16 + 24 + 4 + 8 + 8);
        assert!(payload_bound_bytes(1) < payload_bound_bytes(2));
        assert_eq!(payload_bound_units(0), 2);
        assert_eq!(payload_bound_units(2), 13);
        // The committed frame geometry covers the differential-matrix
        // sides and refuses past them.
        assert!(framed_payload_fits(4));
        assert!(framed_payload_fits(8));
        assert!(framed_payload_fits(16));
        assert!(!framed_payload_fits(32));
    }
}
