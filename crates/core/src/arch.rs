//! The assembled virtual architecture.
//!
//! Bundles the four components of §2 (network model, primitives via the
//! program traits, middleware, cost functions) behind one handle, which is
//! what examples and the design-flow walkthrough (Figure 1) pass around.

use crate::cost::CostModel;
use crate::grid::VirtualGrid;
use crate::groups::Hierarchy;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual architecture instance for a class of deployments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VirtualArchitecture {
    /// The network model: an oriented 2-D grid.
    pub grid: VirtualGrid,
    /// The group-formation middleware.
    pub hierarchy: Hierarchy,
    /// The cost functions.
    pub cost: CostModel,
}

impl VirtualArchitecture {
    /// The paper's case-study architecture: a `side × side` oriented grid
    /// (`side` a power of two), hierarchical groups, uniform cost model.
    pub fn grid_uniform(side: u32) -> Self {
        VirtualArchitecture {
            grid: VirtualGrid::new(side),
            hierarchy: Hierarchy::new(side),
            cost: CostModel::uniform(),
        }
    }
}

impl fmt::Display for VirtualArchitecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "virtual architecture")?;
        writeln!(
            f,
            "  network model : oriented {0}x{0} grid ({1} points of coverage)",
            self.grid.side(),
            self.grid.node_count()
        )?;
        writeln!(
            f,
            "  middleware    : hierarchical groups, levels 0..={} (blocks 1x1 .. {1}x{1}, NW-corner leaders)",
            self.hierarchy.max_level(),
            self.hierarchy.block_size(self.hierarchy.max_level()),
        )?;
        writeln!(
            f,
            "  primitives    : send()/receive() to any node; group send to level-k leader"
        )?;
        write!(
            f,
            "  cost model    : tx={} rx={} compute={} energy/unit; {} tick(s)/unit/hop",
            self.cost.tx_energy,
            self.cost.rx_energy,
            self.cost.compute_energy,
            self.cost.ticks_per_unit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_agree_on_side() {
        let a = VirtualArchitecture::grid_uniform(8);
        assert_eq!(a.grid.side(), 8);
        assert_eq!(a.hierarchy.side(), 8);
        assert_eq!(a.hierarchy.max_level(), 3);
    }

    #[test]
    fn display_mentions_all_components() {
        let s = VirtualArchitecture::grid_uniform(4).to_string();
        assert!(s.contains("4x4 grid"));
        assert!(s.contains("hierarchical groups"));
        assert!(s.contains("send()/receive()"));
        assert!(s.contains("cost model"));
    }
}
