//! The group-formation middleware service.
//!
//! §3.2: "The concept of hierarchical groups is supported for the grid
//! topology. At the lowest level of hierarchy (level 0), every node is
//! both a group member and a group leader. At level 1, the grid is
//! partitioned into blocks of 2×2 nodes. The node in the north-west corner
//! is designated a level 1 leader … Since every node knows its own grid
//! coordinates, it can also determine its role as leader and/or follower
//! at each level of the hierarchy."
//!
//! Everything here is a pure function of grid coordinates — exactly the
//! property the paper relies on to make group membership computable
//! locally, with no protocol traffic.
//!
//! The module also provides the quad-tree (Morton/Z-order) numbering of
//! grid locations used by the paper's Figures 2 and 3, where the 4×4 grid
//! is labeled 0–15 quadrant by quadrant (NW, NE, SW, SE) rather than
//! row-major.

use crate::grid::GridCoord;
use serde::{Deserialize, Serialize};

/// The hierarchical-group service over a `2^p × 2^p` grid.
///
/// ```
/// use wsn_core::{GridCoord, Hierarchy};
///
/// let h = Hierarchy::new(4);
/// // Node (3,1) belongs to the 2×2 block led by its NW corner (2,0):
/// assert_eq!(h.leader(GridCoord::new(3, 1), 1), GridCoord::new(2, 0));
/// // The paper's Figure-3 location labels are Morton indices:
/// assert_eq!(h.morton_index(GridCoord::new(2, 0)), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hierarchy {
    side: u32,
    max_level: u8,
}

impl Hierarchy {
    /// A hierarchy over an `side × side` grid. The paper's recursive
    /// quadrant scheme needs `side` to be a power of two (so that
    /// `log₄ n` is an integer); panics otherwise.
    pub fn new(side: u32) -> Self {
        assert!(
            side > 0 && side.is_power_of_two(),
            "grid side must be a power of two, got {side}"
        );
        Hierarchy {
            side,
            max_level: side.trailing_zeros() as u8,
        }
    }

    /// Grid side.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// The top level `p = log₂(side)`; the single level-`p` block is the
    /// whole grid, whose leader performs the final aggregation.
    pub fn max_level(&self) -> u8 {
        self.max_level
    }

    /// Side length of a level-`level` block, `2^level`.
    pub fn block_size(&self, level: u8) -> u32 {
        assert!(
            level <= self.max_level,
            "level {level} exceeds max {}",
            self.max_level
        );
        1 << level
    }

    /// North-west corner of the level-`level` block containing `c` — the
    /// block's leader.
    pub fn leader(&self, c: GridCoord, level: u8) -> GridCoord {
        debug_assert!(c.col < self.side && c.row < self.side);
        let b = self.block_size(level);
        GridCoord::new(c.col / b * b, c.row / b * b)
    }

    /// Whether `c` is a leader at `level`.
    pub fn is_leader(&self, c: GridCoord, level: u8) -> bool {
        self.leader(c, level) == c
    }

    /// The highest level at which `c` is a leader. Level 0 for most nodes;
    /// `max_level` only for the origin. (The paper: "all level i leaders
    /// are also level i−1 leaders".)
    pub fn highest_leader_level(&self, c: GridCoord) -> u8 {
        (0..=self.max_level)
            .rev()
            .find(|&l| self.is_leader(c, l))
            .expect("every node is a level-0 leader")
    }

    /// All leaders at `level`, row-major.
    pub fn leaders_at(&self, level: u8) -> Vec<GridCoord> {
        let b = self.block_size(level);
        let mut out = Vec::new();
        let mut row = 0;
        while row < self.side {
            let mut col = 0;
            while col < self.side {
                out.push(GridCoord::new(col, row));
                col += b;
            }
            row += b;
        }
        out
    }

    /// Members of the level-`level` block led by `leader` (which must be a
    /// leader at that level), row-major, including the leader itself.
    pub fn members(&self, leader: GridCoord, level: u8) -> Vec<GridCoord> {
        assert!(
            self.is_leader(leader, level),
            "{leader:?} is not a level-{level} leader"
        );
        let b = self.block_size(level);
        let mut out = Vec::with_capacity((b * b) as usize);
        for row in leader.row..leader.row + b {
            for col in leader.col..leader.col + b {
                out.push(GridCoord::new(col, row));
            }
        }
        out
    }

    /// The four level-`level − 1` leaders inside the level-`level` block
    /// led by `leader`, in the paper's quadrant order NW, NE, SW, SE —
    /// the children of a quad-tree node.
    pub fn children(&self, leader: GridCoord, level: u8) -> [GridCoord; 4] {
        assert!(level >= 1, "level-0 groups have no children");
        assert!(
            self.is_leader(leader, level),
            "{leader:?} is not a level-{level} leader"
        );
        let b = self.block_size(level - 1);
        [
            leader,
            GridCoord::new(leader.col + b, leader.row),
            GridCoord::new(leader.col, leader.row + b),
            GridCoord::new(leader.col + b, leader.row + b),
        ]
    }

    /// Hop distance from a follower to its level-`level` leader (§4.2:
    /// "proportional to the minimum number of hops separating them …
    /// assuming shortest path routing"): the Manhattan distance.
    pub fn hops_to_leader(&self, c: GridCoord, level: u8) -> u32 {
        c.manhattan(self.leader(c, level))
    }

    /// The quad-tree (Morton/Z-order) label of a grid location — the
    /// numbering the paper uses in Figures 2 and 3, where quadrants are
    /// labeled in NW, NE, SW, SE order recursively.
    pub fn morton_index(&self, c: GridCoord) -> usize {
        debug_assert!(c.col < self.side && c.row < self.side);
        let mut idx = 0usize;
        for bit in (0..self.max_level).rev() {
            let row_bit = (c.row >> bit) & 1;
            let col_bit = (c.col >> bit) & 1;
            idx = (idx << 2) | ((row_bit << 1) | col_bit) as usize;
        }
        idx
    }

    /// Inverse of [`Hierarchy::morton_index`].
    pub fn from_morton(&self, index: usize) -> GridCoord {
        assert!(
            index < (self.side as usize).pow(2),
            "morton index out of range"
        );
        let mut col = 0u32;
        let mut row = 0u32;
        for bit in 0..self.max_level {
            col |= (((index >> (2 * bit)) & 1) as u32) << bit;
            row |= (((index >> (2 * bit + 1)) & 1) as u32) << bit;
        }
        GridCoord::new(col, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h4() -> Hierarchy {
        Hierarchy::new(4)
    }

    #[test]
    fn max_level_is_log2_side() {
        assert_eq!(h4().max_level(), 2);
        assert_eq!(Hierarchy::new(1).max_level(), 0);
        assert_eq!(Hierarchy::new(32).max_level(), 5);
    }

    #[test]
    fn level0_everyone_leads_themselves() {
        let h = h4();
        for row in 0..4 {
            for col in 0..4 {
                let c = GridCoord::new(col, row);
                assert!(h.is_leader(c, 0));
                assert_eq!(h.leader(c, 0), c);
                assert_eq!(h.hops_to_leader(c, 0), 0);
            }
        }
    }

    #[test]
    fn level1_leaders_are_2x2_nw_corners() {
        let h = h4();
        let leaders = h.leaders_at(1);
        assert_eq!(
            leaders,
            vec![
                GridCoord::new(0, 0),
                GridCoord::new(2, 0),
                GridCoord::new(0, 2),
                GridCoord::new(2, 2),
            ]
        );
        assert_eq!(h.leader(GridCoord::new(3, 1), 1), GridCoord::new(2, 0));
        assert_eq!(h.leader(GridCoord::new(1, 3), 1), GridCoord::new(0, 2));
    }

    #[test]
    fn top_level_leader_is_origin() {
        let h = h4();
        assert_eq!(h.leaders_at(2), vec![GridCoord::new(0, 0)]);
        for c in [
            GridCoord::new(3, 3),
            GridCoord::new(0, 0),
            GridCoord::new(2, 1),
        ] {
            assert_eq!(h.leader(c, 2), GridCoord::new(0, 0));
        }
    }

    #[test]
    fn leaders_nest_across_levels() {
        // "all level i leaders are also level i−1 leaders"
        let h = Hierarchy::new(8);
        for level in 1..=h.max_level() {
            for leader in h.leaders_at(level) {
                assert!(h.is_leader(leader, level - 1));
            }
        }
    }

    #[test]
    fn highest_leader_level_examples() {
        let h = h4();
        assert_eq!(h.highest_leader_level(GridCoord::new(0, 0)), 2);
        assert_eq!(h.highest_leader_level(GridCoord::new(2, 0)), 1);
        assert_eq!(h.highest_leader_level(GridCoord::new(1, 0)), 0);
        assert_eq!(h.highest_leader_level(GridCoord::new(3, 3)), 0);
    }

    #[test]
    fn members_cover_block() {
        let h = h4();
        let m = h.members(GridCoord::new(2, 2), 1);
        assert_eq!(
            m,
            vec![
                GridCoord::new(2, 2),
                GridCoord::new(3, 2),
                GridCoord::new(2, 3),
                GridCoord::new(3, 3),
            ]
        );
        assert_eq!(h.members(GridCoord::new(0, 0), 2).len(), 16);
    }

    #[test]
    fn children_in_quadrant_order() {
        let h = h4();
        assert_eq!(
            h.children(GridCoord::new(0, 0), 2),
            [
                GridCoord::new(0, 0),
                GridCoord::new(2, 0),
                GridCoord::new(0, 2),
                GridCoord::new(2, 2),
            ]
        );
        assert_eq!(
            h.children(GridCoord::new(2, 2), 1),
            [
                GridCoord::new(2, 2),
                GridCoord::new(3, 2),
                GridCoord::new(2, 3),
                GridCoord::new(3, 3),
            ]
        );
    }

    #[test]
    fn morton_matches_paper_figure3() {
        // Figure 3 labels of the 4×4 grid:
        //   0  1 | 4  5
        //   2  3 | 6  7
        //   -----+-----
        //   8  9 | 12 13
        //  10 11 | 14 15
        let h = h4();
        let expected: [[usize; 4]; 4] =
            [[0, 1, 4, 5], [2, 3, 6, 7], [8, 9, 12, 13], [10, 11, 14, 15]];
        for (row, row_labels) in expected.iter().enumerate() {
            for (col, &label) in row_labels.iter().enumerate() {
                let c = GridCoord::new(col as u32, row as u32);
                assert_eq!(h.morton_index(c), label, "coord {c:?}");
                assert_eq!(h.from_morton(label), c);
            }
        }
    }

    #[test]
    fn paper_level1_mapping_locations_0_4_8_12() {
        // §4.2: "the four level 1 nodes are mapped to locations 0, 4, 8,
        // and 12 respectively, which are the leaders of their
        // corresponding groups."
        let h = h4();
        let labels: Vec<usize> = h.leaders_at(1).iter().map(|&c| h.morton_index(c)).collect();
        assert_eq!(labels, vec![0, 4, 8, 12]);
        // And the root maps to location 0.
        assert_eq!(h.morton_index(h.leaders_at(2)[0]), 0);
    }

    #[test]
    fn hops_to_leader_is_manhattan() {
        let h = h4();
        assert_eq!(h.hops_to_leader(GridCoord::new(3, 3), 2), 6);
        assert_eq!(h.hops_to_leader(GridCoord::new(3, 2), 1), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_side_panics() {
        Hierarchy::new(6);
    }

    #[test]
    #[should_panic(expected = "no children")]
    fn level0_children_panics() {
        h4().children(GridCoord::new(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "not a level-1 leader")]
    fn members_of_non_leader_panics() {
        h4().members(GridCoord::new(1, 0), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_hierarchy() -> impl Strategy<Value = Hierarchy> {
        (0u32..6).prop_map(|p| Hierarchy::new(1 << p))
    }

    proptest! {
        /// Morton numbering is a bijection on the grid.
        #[test]
        fn morton_bijective(h in arb_hierarchy()) {
            let n = (h.side() as usize).pow(2);
            let mut seen = vec![false; n];
            for row in 0..h.side() {
                for col in 0..h.side() {
                    let c = GridCoord::new(col, row);
                    let idx = h.morton_index(c);
                    prop_assert!(idx < n);
                    prop_assert!(!seen[idx], "collision at {}", idx);
                    seen[idx] = true;
                    prop_assert_eq!(h.from_morton(idx), c);
                }
            }
        }

        /// Every node's level-k leader leads a block that contains it, and
        /// blocks at each level partition the grid.
        #[test]
        fn blocks_partition(h in arb_hierarchy(), level in 0u8..7) {
            let level = level % (h.max_level() + 1);
            let mut assigned = 0usize;
            for leader in h.leaders_at(level) {
                let members = h.members(leader, level);
                assigned += members.len();
                for m in members {
                    prop_assert_eq!(h.leader(m, level), leader);
                }
            }
            prop_assert_eq!(assigned, (h.side() as usize).pow(2));
        }

        /// Children of a level-k leader are exactly the level-(k−1)
        /// leaders inside its block.
        #[test]
        fn children_are_sub_leaders(h in arb_hierarchy(), level in 1u8..7) {
            prop_assume!(h.max_level() >= 1);
            let level = 1 + (level - 1) % h.max_level();
            for leader in h.leaders_at(level) {
                for child in h.children(leader, level) {
                    prop_assert!(h.is_leader(child, level - 1));
                    prop_assert_eq!(h.leader(child, level), leader);
                }
            }
        }
    }
}
