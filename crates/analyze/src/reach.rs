//! Pass 2 — reachability, determinism, and index-interval analysis.
//!
//! The guarded-command programs the synthesizer emits are tiny reactive
//! machines over a handful of small integers, so instead of a widening
//! abstract interpreter we run an **exhaustive bounded-state exploration**
//! that mirrors the interpreter's semantics exactly:
//!
//! * the scan loop fires the *first* enabled state rule and rescans until
//!   no rule is enabled (same fuel bound as the interpreter, so a scan
//!   that cannot stabilize is reported as livelock instead of hanging);
//! * between stable states, a message of *any* level `0..=maxrecLevel`
//!   (self or remote) may be delivered — an over-approximation of every
//!   network schedule, justified by the message alphabet: `mrecLevel`
//!   tags are produced only by send actions, whose level range this same
//!   pass verifies;
//! * `msgsReceived` counters saturate just above the largest constant the
//!   program compares against, and scalar values clamp at a bound derived
//!   from the program's literals, keeping the state space finite.
//!
//! The exploration yields, per reachable behavior: which rules ever fire
//! (unsatisfiable-guard detection), which state rules are enabled
//! *simultaneously* (scan-order observability), and the exact interval of
//! every index expression — `msgsReceived[·]` reads, `group_level`,
//! `data_level`, and exfiltration levels — together with whether a summary
//! slot could be read before anything was merged into it.

use crate::diag::{Code, Diagnostic, Diagnostics, Span};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use wsn_synth::{Action, Expr, Guard, GuardedProgram};

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct ReachConfig {
    /// Maximum distinct stable states to enumerate before giving up and
    /// reporting partial results.
    pub max_states: usize,
}

impl Default for ReachConfig {
    fn default() -> Self {
        ReachConfig {
            max_states: 400_000,
        }
    }
}

/// Which index expression a recorded interval belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IndexKind {
    /// `msgsReceived[e]` read (guard or action position).
    MsgsReceived,
    /// `SendSummaryToLeader.group_level`.
    GroupLevel,
    /// `SendSummaryToLeader.data_level`.
    DataLevel,
    /// `ExfiltrateSummary.level`.
    ExfiltrateLevel,
}

impl IndexKind {
    fn name(self) -> &'static str {
        match self {
            IndexKind::MsgsReceived => "msgsReceived index",
            IndexKind::GroupLevel => "group_level",
            IndexKind::DataLevel => "data_level",
            IndexKind::ExfiltrateLevel => "exfiltrate level",
        }
    }
}

/// Identity of one index-expression site in the IR.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SiteKey {
    /// Rule the expression occurs in.
    pub rule: usize,
    /// Action path within the rule; empty for the rule guard.
    pub path: Vec<usize>,
    /// Expression role.
    pub kind: IndexKind,
}

/// What the exploration observed.
#[derive(Debug, Clone)]
pub struct ReachReport {
    /// Distinct stable states enumerated.
    pub states: usize,
    /// The state cap was hit; `fired`/`overlaps` are lower bounds and
    /// interval facts cover only the explored prefix.
    pub truncated: bool,
    /// A scalar hit the value clamp; intervals past the clamp are
    /// approximate.
    pub clamped: bool,
    /// Per rule: fired in some reachable behavior.
    pub fired: Vec<bool>,
    /// Pairs of state rules observed enabled simultaneously.
    pub overlaps: BTreeSet<(usize, usize)>,
    /// A scan failed to stabilize; the rule that kept firing.
    pub livelock: Option<usize>,
    /// Observed `[lo, hi]` per index site.
    pub intervals: BTreeMap<SiteKey, (i64, i64)>,
    /// Sites that read a `mySubGraph` slot no action had written yet
    /// (the interpreter panics with "absent summary").
    pub absent_summary: BTreeSet<SiteKey>,
}

/// Explores `program` and returns the raw report.
pub fn explore(program: &GuardedProgram, config: ReachConfig) -> ReachReport {
    let levels: Vec<i64> = (0..=i64::from(program.max_level)).collect();
    Explorer::new(program, config, levels).run()
}

/// Explores `program` with message deliveries restricted to the given
/// level tags — the footprint pass's per-role abstraction: a cell whose
/// highest leader level is `r` only ever receives summaries tagged
/// `1..=r`, so exploring under that restriction yields the exact
/// region-space footprint of every cell of that role. An empty slice
/// allows no deliveries at all (only the boot scan runs).
pub fn explore_with_levels(
    program: &GuardedProgram,
    config: ReachConfig,
    levels: &[i64],
) -> ReachReport {
    Explorer::new(program, config, levels.to_vec()).run()
}

/// Explores `program` and renders the findings as diagnostics (the pass
/// driver). Run [`crate::wellformed::check_program`] first: this pass
/// assumes every referenced variable is declared and reads missing ones
/// as 0.
pub fn check_dynamics(program: &GuardedProgram, config: ReachConfig) -> Diagnostics {
    let report = explore(program, config);
    let max_level = i64::from(program.max_level);
    let mut diags = Diagnostics::new();

    let rule_span = |r: usize| Span::Rule {
        rule: r,
        label: program.rules[r].label.clone(),
    };

    if let Some(r) = report.livelock {
        diags.push(
            Diagnostic::error(
                Code::RD003,
                rule_span(r),
                format!(
                    "rule {:?} keeps firing without reaching a stable state; the interpreter's fuel bound would panic",
                    program.rules[r].label
                ),
            )
            .with_suggestion("make every rule falsify its own guard (e.g. clear the flag it tests)"),
        );
    }

    for (r, fired) in report.fired.iter().enumerate() {
        if !fired && !report.truncated && report.livelock.is_none() {
            diags.push(
                Diagnostic::warning(
                    Code::RD001,
                    rule_span(r),
                    format!(
                        "guard of rule {:?} is unsatisfiable in every reachable state from the initial environment",
                        program.rules[r].label
                    ),
                )
                .with_suggestion("delete the rule or fix the guard's constants"),
            );
        }
    }

    for &(a, b) in &report.overlaps {
        diags.push(
            Diagnostic::warning(
                Code::RD002,
                Span::RulePair { a, b },
                format!(
                    "rules {:?} and {:?} are enabled simultaneously in a reachable state; which fires first is decided by scan order, so reordering rules changes behavior",
                    program.rules[a].label, program.rules[b].label
                ),
            )
            .with_suggestion("make the guards mutually exclusive if scan order is not meant to be semantic"),
        );
    }

    for (site, &(lo, hi)) in &report.intervals {
        // msgsReceived reads tolerate the interpreter's one-past slot
        // (recLevel legitimately reaches maxrecLevel + 1 after the final
        // merge); summary levels must stay within the declared hierarchy.
        let (bound_lo, bound_hi) = match site.kind {
            IndexKind::MsgsReceived => (0, max_level + 1),
            _ => (0, max_level),
        };
        if lo < bound_lo || hi > bound_hi {
            let code = if site.kind == IndexKind::MsgsReceived {
                Code::WF006
            } else {
                Code::WF007
            };
            diags.push(
                Diagnostic::error(
                    code,
                    site_span(site),
                    format!(
                        "{} evaluates to [{lo}, {hi}] in reachable states, escaping the valid range [{bound_lo}, {bound_hi}] for maxrecLevel = {max_level}",
                        site.kind.name()
                    ),
                )
                .with_suggestion("adjust the level arithmetic or the guard that enables this rule"),
            );
        }
    }

    for site in &report.absent_summary {
        diags.push(
            Diagnostic::error(
                Code::WF010,
                site_span(site),
                format!(
                    "{} can read a mySubGraph slot before any merge or local computation wrote it; the interpreter panics on the absent summary",
                    site.kind.name()
                ),
            )
            .with_suggestion("guard the send/exfiltration on the quorum that fills the slot"),
        );
    }

    if report.truncated || report.clamped {
        diags.push(Diagnostic::info(
            Code::RD004,
            Span::Program,
            format!(
                "exploration bounded ({} states{}{}); reachability findings are partial",
                report.states,
                if report.truncated {
                    ", state cap hit"
                } else {
                    ""
                },
                if report.clamped {
                    ", value clamp hit"
                } else {
                    ""
                },
            ),
        ));
    }

    diags
}

fn site_span(site: &SiteKey) -> Span {
    if site.path.is_empty() {
        Span::Rule {
            rule: site.rule,
            label: String::new(),
        }
    } else {
        Span::Action {
            rule: site.rule,
            path: site.path.clone(),
        }
    }
}

/// One model state: scalar values, saturating per-level counters, and the
/// written-slot bitmask of `mySubGraph`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    vars: Vec<i64>,
    msgs: Vec<u16>,
    slots: u64,
}

#[derive(Clone, Copy)]
struct Incoming {
    level: i64,
    from_self: bool,
}

struct Explorer<'p> {
    program: &'p GuardedProgram,
    config: ReachConfig,
    levels: Vec<i64>,
    var_index: HashMap<&'p str, usize>,
    state_rules: Vec<usize>,
    receive_rules: Vec<usize>,
    max_level: i64,
    clamp: i64,
    counter_cap: u16,
    report: ReachReport,
}

impl<'p> Explorer<'p> {
    fn new(program: &'p GuardedProgram, config: ReachConfig, levels: Vec<i64>) -> Self {
        let mut var_index = HashMap::new();
        for (i, d) in program.state.iter().enumerate() {
            var_index.entry(d.name.as_str()).or_insert(i);
        }
        let mut state_rules = Vec::new();
        let mut receive_rules = Vec::new();
        for (r, rule) in program.rules.iter().enumerate() {
            if rule.guard == Guard::Received {
                receive_rules.push(r);
            } else {
                state_rules.push(r);
            }
        }
        let max_literal = max_abs_literal(program);
        let max_level = i64::from(program.max_level);
        Explorer {
            config,
            levels,
            var_index,
            state_rules,
            receive_rules,
            max_level,
            clamp: max_literal.max(max_level) + 2,
            counter_cap: (max_literal.clamp(1, u16::MAX as i64 - 1) + 1) as u16,
            report: ReachReport {
                states: 0,
                truncated: false,
                clamped: false,
                fired: vec![false; program.rules.len()],
                overlaps: BTreeSet::new(),
                livelock: None,
                intervals: BTreeMap::new(),
                absent_summary: BTreeSet::new(),
            },
            program,
        }
    }

    fn run(mut self) -> ReachReport {
        let mut st = State {
            vars: self
                .program
                .state
                .iter()
                .map(|d| match d.init {
                    Expr::Int(v) => v,
                    Expr::Bool(b) => i64::from(b),
                    _ => 0,
                })
                .collect(),
            msgs: vec![0; self.max_level as usize + 1],
            slots: 0,
        };
        // The runtime trigger: on_init flips `start` before the first scan.
        if let Some(&i) = self.var_index.get("start") {
            st.vars[i] = 1;
        }

        let mut seen: HashSet<State> = HashSet::new();
        let mut queue: VecDeque<State> = VecDeque::new();
        if let Some(stable) = self.stabilize(st) {
            seen.insert(stable.clone());
            queue.push_back(stable);
        }

        while let Some(st) = queue.pop_front() {
            if self.report.livelock.is_some() {
                break;
            }
            for level in self.levels.clone() {
                for from_self in [false, true] {
                    let mut next = st.clone();
                    let incoming = Incoming { level, from_self };
                    for &r in &self.receive_rules.clone() {
                        self.report.fired[r] = true;
                        let mut path = Vec::new();
                        let actions = &self.program.rules[r].actions;
                        self.exec_actions(&mut next, actions, r, &mut path, Some(incoming));
                    }
                    if let Some(stable) = self.stabilize(next) {
                        if seen.contains(&stable) {
                            continue;
                        }
                        if seen.len() >= self.config.max_states {
                            self.report.truncated = true;
                            self.report.states = seen.len();
                            return self.report;
                        }
                        seen.insert(stable.clone());
                        queue.push_back(stable);
                    }
                }
            }
        }
        self.report.states = seen.len();
        self.report
    }

    /// Runs the interpreter's scan loop to a stable state, recording
    /// fired rules and simultaneously-enabled pairs. `None` on livelock.
    fn stabilize(&mut self, mut st: State) -> Option<State> {
        let mut fuel = 16 * (u32::from(self.program.max_level) + 4);
        loop {
            let enabled: Vec<usize> = self
                .state_rules
                .clone()
                .into_iter()
                .filter(|&r| self.eval_guard(&st, &self.program.rules[r].guard, r, &[], None))
                .collect();
            for (i, &a) in enabled.iter().enumerate() {
                for &b in &enabled[i + 1..] {
                    self.report.overlaps.insert((a, b));
                }
            }
            let Some(&r) = enabled.first() else {
                return Some(st);
            };
            if fuel == 0 {
                self.report.livelock.get_or_insert(r);
                return None;
            }
            fuel -= 1;
            self.report.fired[r] = true;
            let mut path = Vec::new();
            let actions = &self.program.rules[r].actions;
            self.exec_actions(&mut st, actions, r, &mut path, None);
        }
    }

    fn record(&mut self, kind: IndexKind, rule: usize, path: &[usize], value: i64) {
        let key = SiteKey {
            rule,
            path: path.to_vec(),
            kind,
        };
        let entry = self.report.intervals.entry(key).or_insert((value, value));
        entry.0 = entry.0.min(value);
        entry.1 = entry.1.max(value);
    }

    fn clamp_value(&mut self, v: i64) -> i64 {
        if v.abs() > self.clamp {
            self.report.clamped = true;
            v.clamp(-self.clamp, self.clamp)
        } else {
            v
        }
    }

    fn eval(&mut self, st: &State, e: &Expr, rule: usize, path: &[usize]) -> i64 {
        match e {
            Expr::Int(v) => *v,
            Expr::Bool(b) => i64::from(*b),
            Expr::Var(name) => self
                .var_index
                .get(name.as_str())
                .map(|&i| st.vars[i])
                .unwrap_or(0),
            Expr::Add(a, b) => {
                let v = self.eval(st, a, rule, path) + self.eval(st, b, rule, path);
                self.clamp_value(v)
            }
            Expr::Sub(a, b) => {
                let v = self.eval(st, a, rule, path) - self.eval(st, b, rule, path);
                self.clamp_value(v)
            }
            Expr::MsgsReceivedAt(idx) => {
                let i = self.eval(st, idx, rule, path);
                self.record(IndexKind::MsgsReceived, rule, path, i);
                if (0..=self.max_level).contains(&i) {
                    i64::from(st.msgs[i as usize])
                } else {
                    0 // mirror the interpreter's out-of-range read
                }
            }
        }
    }

    fn eval_guard(
        &mut self,
        st: &State,
        g: &Guard,
        rule: usize,
        path: &[usize],
        incoming: Option<Incoming>,
    ) -> bool {
        match g {
            Guard::Eq(a, b) => self.eval(st, a, rule, path) == self.eval(st, b, rule, path),
            Guard::Received => incoming.is_some(),
            Guard::IncomingFromSelf => incoming.map(|m| m.from_self).unwrap_or(false),
            Guard::And(a, b) => {
                self.eval_guard(st, a, rule, path, incoming)
                    && self.eval_guard(st, b, rule, path, incoming)
            }
        }
    }

    fn exec_actions(
        &mut self,
        st: &mut State,
        actions: &[Action],
        rule: usize,
        path: &mut Vec<usize>,
        incoming: Option<Incoming>,
    ) {
        for (i, action) in actions.iter().enumerate() {
            path.push(i);
            match action {
                Action::Set(name, e) => {
                    let v = self.eval(st, e, rule, path);
                    let v = self.clamp_value(v);
                    if let Some(&idx) = self.var_index.get(name.as_str()) {
                        st.vars[idx] = v;
                    }
                }
                Action::ComputeLocalSummary => {
                    st.slots |= 1;
                }
                Action::MergeIncoming => {
                    if let Some(m) = incoming {
                        st.slots |= 1 << m.level;
                    }
                }
                Action::CountIncoming => {
                    // Counts unconditionally, like the interpreter: the
                    // self-message filter is part of the program text
                    // (an IfElse on IncomingFromSelf), not the semantics.
                    if let Some(m) = incoming {
                        let slot = &mut st.msgs[m.level as usize];
                        *slot = (*slot + 1).min(self.counter_cap);
                    }
                }
                Action::IfElse {
                    cond,
                    then,
                    otherwise,
                } => {
                    if self.eval_guard(st, cond, rule, path, incoming) {
                        path.push(0);
                        self.exec_actions(st, then, rule, path, incoming);
                        path.pop();
                    } else {
                        path.push(1);
                        self.exec_actions(st, otherwise, rule, path, incoming);
                        path.pop();
                    }
                }
                Action::SendSummaryToLeader {
                    group_level,
                    data_level,
                } => {
                    let g = self.eval(st, group_level, rule, path);
                    self.record(IndexKind::GroupLevel, rule, path, g);
                    let dl = self.eval(st, data_level, rule, path);
                    self.record(IndexKind::DataLevel, rule, path, dl);
                    self.check_slot(st, dl, IndexKind::DataLevel, rule, path);
                }
                Action::ExfiltrateSummary { level } => {
                    let l = self.eval(st, level, rule, path);
                    self.record(IndexKind::ExfiltrateLevel, rule, path, l);
                    self.check_slot(st, l, IndexKind::ExfiltrateLevel, rule, path);
                }
            }
            path.pop();
        }
    }

    fn check_slot(&mut self, st: &State, level: i64, kind: IndexKind, rule: usize, path: &[usize]) {
        if (0..=self.max_level).contains(&level) && st.slots & (1 << level) == 0 {
            self.report.absent_summary.insert(SiteKey {
                rule,
                path: path.to_vec(),
                kind,
            });
        }
    }
}

fn max_abs_literal(program: &GuardedProgram) -> i64 {
    fn expr(e: &Expr, m: &mut i64) {
        match e {
            Expr::Int(v) => *m = (*m).max(v.abs()),
            Expr::Bool(_) | Expr::Var(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                expr(a, m);
                expr(b, m);
            }
            Expr::MsgsReceivedAt(i) => expr(i, m),
        }
    }
    fn guard(g: &Guard, m: &mut i64) {
        match g {
            Guard::Eq(a, b) => {
                expr(a, m);
                expr(b, m);
            }
            Guard::Received | Guard::IncomingFromSelf => {}
            Guard::And(a, b) => {
                guard(a, m);
                guard(b, m);
            }
        }
    }
    fn actions(list: &[Action], m: &mut i64) {
        for a in list {
            match a {
                Action::Set(_, e) => expr(e, m),
                Action::ComputeLocalSummary | Action::MergeIncoming | Action::CountIncoming => {}
                Action::IfElse {
                    cond,
                    then,
                    otherwise,
                } => {
                    guard(cond, m);
                    actions(then, m);
                    actions(otherwise, m);
                }
                Action::SendSummaryToLeader {
                    group_level,
                    data_level,
                } => {
                    expr(group_level, m);
                    expr(data_level, m);
                }
                Action::ExfiltrateSummary { level } => expr(level, m),
            }
        }
    }
    let mut m = 1;
    for d in &program.state {
        expr(&d.init, &mut m);
    }
    for r in &program.rules {
        guard(&r.guard, &mut m);
        actions(&r.actions, &mut m);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_synth::{synthesize_gather_program, synthesize_quadtree_program, Rule};

    #[test]
    fn figure4_dynamics_are_clean_of_errors() {
        for depth in 1..=3 {
            let p = synthesize_quadtree_program(depth);
            let d = check_dynamics(&p, ReachConfig::default());
            assert_eq!(d.error_count(), 0, "depth {depth}: {}", d.render_text());
            assert!(
                !d.has_code(Code::RD001),
                "depth {depth}: {}",
                d.render_text()
            );
        }
    }

    #[test]
    fn figure4_every_rule_reachable_and_indices_bounded() {
        let p = synthesize_quadtree_program(2);
        let r = explore(&p, ReachConfig::default());
        assert!(r.fired.iter().all(|&f| f), "{:?}", r.fired);
        assert!(!r.truncated);
        assert!(!r.clamped);
        assert!(r.livelock.is_none());
        assert!(r.absent_summary.is_empty(), "{:?}", r.absent_summary);
        for (site, &(lo, hi)) in &r.intervals {
            match site.kind {
                IndexKind::MsgsReceived => assert!(lo >= 0 && hi <= 3, "{site:?} [{lo},{hi}]"),
                _ => assert!(lo >= 0 && hi <= 2, "{site:?} [{lo},{hi}]"),
            }
        }
    }

    #[test]
    fn figure4_transmit_quorum_overlap_is_observed() {
        // The paper's program relies on scan order: the quorum rule can be
        // enabled while transmit is still pending (level-l+1 messages
        // arriving before the level-l send happened).
        let p = synthesize_quadtree_program(2);
        let d = check_dynamics(&p, ReachConfig::default());
        assert!(d.has_code(Code::RD002), "{}", d.render_text());
        assert_eq!(d.error_count(), 0);
    }

    #[test]
    fn gather_program_is_clean_of_errors() {
        let p = synthesize_gather_program(2, 4);
        let d = check_dynamics(&p, ReachConfig::default());
        assert_eq!(d.error_count(), 0, "{}", d.render_text());
    }

    #[test]
    fn unsatisfiable_guard_reported() {
        let mut p = synthesize_quadtree_program(1);
        p.rules.push(Rule {
            label: "never".into(),
            guard: wsn_synth::Guard::Eq(wsn_synth::Expr::var("recLevel"), wsn_synth::Expr::Int(-7)),
            actions: vec![],
        });
        let d = check_dynamics(&p, ReachConfig::default());
        assert!(d.has_code(Code::RD001), "{}", d.render_text());
    }

    #[test]
    fn livelock_reported() {
        let mut p = synthesize_quadtree_program(1);
        // Fires forever: never falsifies its own guard.
        p.rules.push(Rule {
            label: "spin".into(),
            guard: wsn_synth::Guard::Eq(
                wsn_synth::Expr::var("maxrecLevel"),
                wsn_synth::Expr::Int(1),
            ),
            actions: vec![],
        });
        let d = check_dynamics(&p, ReachConfig::default());
        assert!(d.has_code(Code::RD003), "{}", d.render_text());
        assert!(d.has_errors());
    }

    #[test]
    fn out_of_range_send_level_reported() {
        let mut p = synthesize_quadtree_program(1);
        // A boot-time send addressed beyond the hierarchy: group_level =
        // maxrecLevel + 3.
        p.rules[0]
            .actions
            .push(wsn_synth::Action::SendSummaryToLeader {
                group_level: wsn_synth::Expr::var("maxrecLevel").plus(3),
                data_level: wsn_synth::Expr::Int(0),
            });
        let d = check_dynamics(&p, ReachConfig::default());
        assert!(d.has_code(Code::WF007), "{}", d.render_text());
        assert!(d.has_errors());
    }

    #[test]
    fn negative_msgs_received_index_reported() {
        let mut p = synthesize_quadtree_program(1);
        p.rules.push(Rule {
            label: "probe".into(),
            guard: wsn_synth::Guard::Eq(
                wsn_synth::Expr::MsgsReceivedAt(Box::new(wsn_synth::Expr::Int(-2))),
                wsn_synth::Expr::Int(1),
            ),
            actions: vec![],
        });
        let d = check_dynamics(&p, ReachConfig::default());
        assert!(d.has_code(Code::WF006), "{}", d.render_text());
    }

    #[test]
    fn absent_summary_read_reported() {
        let mut p = synthesize_quadtree_program(2);
        // Exfiltrate the top-level summary at boot, before anything merged.
        p.rules[0].actions.insert(
            0,
            wsn_synth::Action::ExfiltrateSummary {
                level: wsn_synth::Expr::var("maxrecLevel"),
            },
        );
        let d = check_dynamics(&p, ReachConfig::default());
        assert!(d.has_code(Code::WF010), "{}", d.render_text());
    }

    #[test]
    fn truncation_is_reported_not_silent() {
        let p = synthesize_quadtree_program(3);
        let d = check_dynamics(&p, ReachConfig { max_states: 10 });
        assert!(d.has_code(Code::RD004), "{}", d.render_text());
        assert_eq!(d.error_count(), 0);
    }
}
