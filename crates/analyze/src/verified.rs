//! Analysis-gated synthesis and code generation.
//!
//! The analyzer's contract with the rest of the toolchain: error-severity
//! diagnostics mean the artifact will panic, hang, or violate a design
//! constraint at runtime, so the checked entry points refuse to hand it
//! onward unless the caller explicitly opts out
//! ([`Enforcement::AllowErrors`], the "I know, ship it anyway" escape
//! hatch for debugging broken programs through the printer).

use crate::diag::Diagnostics;
use crate::{analyze_deployment, analyze_program};
use std::fmt;
use wsn_synth::{
    render_figure4, synthesize_from_mapping, GuardedProgram, Mapping, QuadTree, SynthesisError,
};

/// What to do when analysis reports errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Enforcement {
    /// Refuse artifacts carrying error-severity diagnostics (default).
    #[default]
    DenyErrors,
    /// Pass them through anyway (diagnostics are still returned).
    AllowErrors,
}

/// Why a checked pipeline stage refused.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckedError {
    /// Synthesis itself failed (infeasible mapping, off-leader task).
    Synthesis(SynthesisError),
    /// Analysis found error-severity diagnostics and enforcement is
    /// [`Enforcement::DenyErrors`].
    Rejected(Diagnostics),
}

impl fmt::Display for CheckedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckedError::Synthesis(e) => write!(f, "synthesis failed: {e:?}"),
            CheckedError::Rejected(d) => write!(
                f,
                "analysis rejected the artifact ({} error(s)):\n{}",
                d.error_count(),
                d.render_text()
            ),
        }
    }
}

impl std::error::Error for CheckedError {}

/// Renders a program in the paper's Figure-4 notation after analyzing
/// it. Under [`Enforcement::DenyErrors`] an error-bearing program is
/// refused with its diagnostics instead of rendered.
pub fn render_figure4_checked(
    program: &GuardedProgram,
    enforcement: Enforcement,
) -> Result<(String, Diagnostics), CheckedError> {
    let diags = analyze_program(program);
    if enforcement == Enforcement::DenyErrors && diags.has_errors() {
        return Err(CheckedError::Rejected(diags));
    }
    Ok((render_figure4(program), diags))
}

/// The full checked synthesis step: mapping-constraint verification (from
/// the synthesizer), then program, graph, mapping, and deadlock analysis
/// of the result. Under [`Enforcement::DenyErrors`] an error-bearing
/// deployment is refused.
pub fn synthesize_checked(
    qt: &QuadTree,
    mapping: &Mapping,
    enforcement: Enforcement,
) -> Result<(GuardedProgram, Diagnostics), CheckedError> {
    let program = synthesize_from_mapping(qt, mapping).map_err(CheckedError::Synthesis)?;
    let diags = analyze_deployment(qt, mapping, &program);
    if enforcement == Enforcement::DenyErrors && diags.has_errors() {
        return Err(CheckedError::Rejected(diags));
    }
    Ok((program, diags))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_synth::{quadtree_task_graph, synthesize_quadtree_program, Mapper, QuadrantMapper};

    #[test]
    fn clean_program_renders_with_diagnostics_attached() {
        let p = synthesize_quadtree_program(2);
        let (text, diags) = render_figure4_checked(&p, Enforcement::DenyErrors).unwrap();
        assert!(text.contains("msgsReceived"));
        assert_eq!(diags.error_count(), 0);
    }

    #[test]
    fn broken_program_is_refused_then_forced_through() {
        let mut p = synthesize_quadtree_program(2);
        p.rules[0].actions.push(wsn_synth::Action::Set(
            "ghost".into(),
            wsn_synth::Expr::Int(1),
        ));
        let err = render_figure4_checked(&p, Enforcement::DenyErrors).unwrap_err();
        let CheckedError::Rejected(diags) = err else {
            panic!("expected rejection");
        };
        assert!(diags.has_errors());
        // The opt-out still surfaces the diagnostics.
        let (text, diags) = render_figure4_checked(&p, Enforcement::AllowErrors).unwrap();
        assert!(!text.is_empty());
        assert!(diags.has_errors());
    }

    #[test]
    fn checked_synthesis_passes_the_paper_deployment() {
        let qt = quadtree_task_graph(4, &|l| u64::from(l) + 1, &|l| u64::from(l));
        let m = QuadrantMapper.map(&qt);
        let (program, diags) = synthesize_checked(&qt, &m, Enforcement::DenyErrors).unwrap();
        assert_eq!(program.max_level, 2);
        assert_eq!(diags.error_count(), 0, "{}", diags.render_text());
    }

    #[test]
    fn checked_synthesis_rejects_an_infeasible_mapping() {
        let qt = quadtree_task_graph(4, &|l| u64::from(l) + 1, &|l| u64::from(l));
        let mut m = QuadrantMapper.map(&qt);
        m.assign(0, m.node_of(1));
        let err = synthesize_checked(&qt, &m, Enforcement::DenyErrors).unwrap_err();
        assert!(matches!(err, CheckedError::Synthesis(_)), "{err}");
    }
}
