//! Pass 5 — cost-budget conformance.
//!
//! The paper's methodology evaluates candidate mappings against mission
//! requirements at design time (§3.2, §5). This pass closes the loop for
//! the linter: it prices a mapping with [`MappingCost::evaluate`] and
//! checks the result against a [`CostBudget`], turning each exceeded
//! dimension into a structured diagnostic ([`Code::CB001`]–
//! [`Code::CB004`]).

use crate::diag::{Code, Diagnostic, Diagnostics, Span};
use wsn_core::{BudgetViolation, CostBudget, CostModel};
use wsn_synth::{Mapping, MappingCost, QuadTree};

/// Prices `mapping` and reports every budget dimension it exceeds.
pub fn check_budget(
    qt: &QuadTree,
    mapping: &Mapping,
    cost: &CostModel,
    budget: &CostBudget,
) -> Diagnostics {
    let mut diags = Diagnostics::new();
    if budget.is_unbounded() {
        return diags;
    }
    let priced = MappingCost::evaluate(qt, mapping, cost);
    for v in budget.violations(
        priced.total_energy,
        priced.max_node_energy,
        priced.energy_balance,
        priced.critical_path_ticks,
    ) {
        diags.push(budget_diag(&v));
    }
    diags
}

fn budget_diag(v: &BudgetViolation) -> Diagnostic {
    let (code, message, help) = match v {
        BudgetViolation::TotalEnergy { actual, budget } => (
            Code::CB001,
            format!("one round costs {actual:.1} energy units network-wide, over the budget of {budget:.1}"),
            "reduce payloads, shorten routes, or raise the budget",
        ),
        BudgetViolation::NodeEnergy { actual, budget } => (
            Code::CB002,
            format!("the hotspot node spends {actual:.1} energy units per round, over the budget of {budget:.1}"),
            "spread interior tasks (e.g. the centroid or annealing mapper) to unload the hotspot",
        ),
        BudgetViolation::EnergyBalance { actual, budget } => (
            Code::CB003,
            format!("energy balance (Jain fairness) is {actual:.3}, below the budgeted floor of {budget:.3}"),
            "rebalance interior placements; leader-aligned mappings concentrate load on corners",
        ),
        BudgetViolation::Latency { actual, budget } => (
            Code::CB004,
            format!("one round's critical path takes {actual} ticks, over the budget of {budget}"),
            "shorten parent links or reduce per-hop payloads on the critical path",
        ),
    };
    Diagnostic::error(code, Span::Program, message).with_suggestion(help)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_synth::{quadtree_task_graph, Mapper, QuadrantMapper};

    fn priced_fixture() -> (QuadTree, Mapping, MappingCost) {
        let qt = quadtree_task_graph(4, &|l| u64::from(l) + 1, &|l| u64::from(l));
        let m = QuadrantMapper.map(&qt);
        let c = MappingCost::evaluate(&qt, &m, &CostModel::uniform());
        (qt, m, c)
    }

    #[test]
    fn unbounded_budget_reports_nothing() {
        let (qt, m, _) = priced_fixture();
        let d = check_budget(&qt, &m, &CostModel::uniform(), &CostBudget::unbounded());
        assert!(d.is_empty());
    }

    #[test]
    fn generous_budget_passes_and_tight_budget_reports_each_dimension() {
        let (qt, m, priced) = priced_fixture();
        let generous = CostBudget {
            max_total_energy: Some(priced.total_energy + 1.0),
            max_node_energy: Some(priced.max_node_energy + 1.0),
            min_energy_balance: Some(priced.energy_balance - 0.01),
            max_latency_ticks: Some(priced.critical_path_ticks + 1),
        };
        assert!(check_budget(&qt, &m, &CostModel::uniform(), &generous).is_empty());

        let tight = CostBudget {
            max_total_energy: Some(priced.total_energy / 2.0),
            max_node_energy: Some(priced.max_node_energy / 2.0),
            min_energy_balance: Some((priced.energy_balance + 1.0).min(1.0)),
            max_latency_ticks: Some(priced.critical_path_ticks / 2),
        };
        let d = check_budget(&qt, &m, &CostModel::uniform(), &tight);
        assert_eq!(d.error_count(), 4, "{}", d.render_text());
        for code in [Code::CB001, Code::CB002, Code::CB003, Code::CB004] {
            assert!(d.has_code(code), "{code}");
        }
    }
}
