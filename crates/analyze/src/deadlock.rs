//! Pass 4 — cross-node deadlock detection.
//!
//! The synthesized program is SPMD: every node runs the same rules, but
//! *which* messages a node actually receives is decided by the mapping.
//! A quorum guard `msgsReceived[l] = k` therefore encodes a cross-node
//! wait: the node hosting a level-`l` merge task blocks until `k`
//! counted (non-self) messages of level `l` arrive. The senders of those
//! messages are exactly the task's children in the graph, and a child
//! mapped to the *same* node contributes a self-message the program does
//! not count (§4.3: the figure keeps the quorum at 3 because "one of the
//! four incoming messages … is from the node to itself").
//!
//! This pass extracts every quorum from the program's guards, derives the
//! per-task wait-for structure from graph + mapping, and flags levels
//! where demand and supply disagree: fewer counted senders than the
//! quorum is a deadlock (the rule never fires and the aggregation stalls
//! forever, [`Code::DL001`]); more senders than the quorum consumes means
//! the guard can fire before the extent is fully merged
//! ([`Code::DL002`]).

use crate::diag::{Code, Diagnostic, Diagnostics, Span};
use std::collections::BTreeMap;
use wsn_core::GridCoord;
use wsn_synth::{Expr, Guard, GuardedProgram, Mapping, QuadTree, TaskId, TaskKind};

/// How many counted messages a program waits for, per hierarchy level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumSpec {
    /// Expected `msgsReceived[level]` count.
    pub expected: i64,
    /// Rule the quorum guard belongs to.
    pub rule: usize,
}

/// One merge task's cross-node wait, resolved against a mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wait {
    /// The waiting (interior) task.
    pub task: TaskId,
    /// Its hierarchy level.
    pub level: u8,
    /// The node hosting it.
    pub node: GridCoord,
    /// Messages the quorum demands.
    pub expected: i64,
    /// Children mapped to *other* nodes (their messages are counted).
    pub counted_senders: Vec<(TaskId, GridCoord)>,
    /// Children co-located with the task (self-messages, not counted).
    pub self_senders: Vec<TaskId>,
}

/// Extracts the per-level quorums from a program's state-rule guards.
///
/// A guard clause `msgsReceived[idx] = k` contributes:
/// * `idx` a literal — a quorum at that level;
/// * `idx` the `maxrecLevel` constant — a quorum at the top level;
/// * `idx` any other expression (e.g. the roving `recLevel`) — a quorum
///   at every interior level `1..=maxrecLevel`, since the index sweeps
///   the hierarchy as the node climbs it.
pub fn quorum_specs(program: &GuardedProgram) -> BTreeMap<u8, QuorumSpec> {
    let mut out = BTreeMap::new();
    for (r, rule) in program.rules.iter().enumerate() {
        if rule.guard == Guard::Received {
            continue;
        }
        collect_quorums(&rule.guard, r, program.max_level, &mut out);
    }
    out
}

fn collect_quorums(g: &Guard, rule: usize, max_level: u8, out: &mut BTreeMap<u8, QuorumSpec>) {
    match g {
        Guard::Eq(a, b) => {
            let pair = match (a, b) {
                (Expr::MsgsReceivedAt(idx), Expr::Int(k)) => Some((idx, *k)),
                (Expr::Int(k), Expr::MsgsReceivedAt(idx)) => Some((idx, *k)),
                _ => None,
            };
            if let Some((idx, expected)) = pair {
                let levels: Vec<u8> = match idx.as_ref() {
                    Expr::Int(l) if (0..=i64::from(max_level)).contains(l) => vec![*l as u8],
                    Expr::Var(name) if name == "maxrecLevel" => vec![max_level],
                    _ => (1..=max_level).collect(),
                };
                for level in levels {
                    out.entry(level).or_insert(QuorumSpec { expected, rule });
                }
            }
        }
        Guard::And(a, b) => {
            collect_quorums(a, rule, max_level, out);
            collect_quorums(b, rule, max_level, out);
        }
        Guard::Received | Guard::IncomingFromSelf => {}
    }
}

/// Builds the wait-for structure: one [`Wait`] per interior task whose
/// level carries a quorum, with its counted and self senders under
/// `mapping`.
pub fn wait_for_graph(qt: &QuadTree, mapping: &Mapping, program: &GuardedProgram) -> Vec<Wait> {
    let quorums = quorum_specs(program);
    let mut waits = Vec::new();
    for task in qt.graph.tasks() {
        if task.kind != TaskKind::Processing {
            continue;
        }
        let Some(spec) = quorums.get(&task.level) else {
            continue;
        };
        let node = mapping.node_of(task.id);
        let mut counted = Vec::new();
        let mut selves = Vec::new();
        for &child in qt.graph.producers(task.id) {
            let child_node = mapping.node_of(child);
            if child_node == node {
                selves.push(child);
            } else {
                counted.push((child, child_node));
            }
        }
        waits.push(Wait {
            task: task.id,
            level: task.level,
            node,
            expected: spec.expected,
            counted_senders: counted,
            self_senders: selves,
        });
    }
    waits
}

/// Runs the deadlock pass: quorum supply vs demand for every merge task.
pub fn check_deadlock(qt: &QuadTree, mapping: &Mapping, program: &GuardedProgram) -> Diagnostics {
    let mut diags = Diagnostics::new();
    for w in wait_for_graph(qt, mapping, program) {
        let supply = w.counted_senders.len() as i64;
        if supply < w.expected {
            diags.push(
                Diagnostic::error(
                    Code::DL001,
                    Span::Task(w.task),
                    format!(
                        "node ({}, {}) waits for msgsReceived[{}] = {} but the mapping supplies only {} counted sender(s) ({} self-message(s) are not counted); the level-{} merge never fires and the aggregation deadlocks",
                        w.node.col, w.node.row, w.level, w.expected, supply,
                        w.self_senders.len(), w.level
                    ),
                )
                .with_suggestion(
                    "lower the quorum constant or remap children off the merge node",
                ),
            );
        } else if supply > w.expected {
            diags.push(
                Diagnostic::warning(
                    Code::DL002,
                    Span::Task(w.task),
                    format!(
                        "node ({}, {}) needs msgsReceived[{}] = {} but {} senders are counted; the merge can fire before the whole extent arrived",
                        w.node.col, w.node.row, w.level, w.expected, supply
                    ),
                )
                .with_suggestion("raise the quorum to the number of remote children"),
            );
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_synth::{
        quadtree_task_graph, synthesize_quadtree_program, Mapper, QuadrantMapper, Rule,
    };

    fn qt(side: u32) -> QuadTree {
        quadtree_task_graph(side, &|l| u64::from(l) + 1, &|l| u64::from(l))
    }

    fn set_quorum(program: &mut GuardedProgram, k: i64) {
        // Rewrite every `msgsReceived[e] = 3` clause to `= k`.
        fn rewrite(g: &mut Guard, k: i64) {
            match g {
                Guard::Eq(a, b) => {
                    if matches!(a, Expr::MsgsReceivedAt(_)) {
                        *b = Expr::Int(k);
                    } else if matches!(b, Expr::MsgsReceivedAt(_)) {
                        *a = Expr::Int(k);
                    }
                }
                Guard::And(a, b) => {
                    rewrite(a, k);
                    rewrite(b, k);
                }
                Guard::Received | Guard::IncomingFromSelf => {}
            }
        }
        for rule in &mut program.rules {
            rewrite(&mut rule.guard, k);
        }
    }

    #[test]
    fn figure4_quorums_cover_every_interior_level() {
        let p = synthesize_quadtree_program(2);
        let q = quorum_specs(&p);
        assert_eq!(q.keys().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert!(q.values().all(|s| s.expected == 3));
    }

    #[test]
    fn paper_mapping_is_deadlock_free() {
        let qt = qt(4);
        let m = QuadrantMapper.map(&qt);
        let p = synthesize_quadtree_program(2);
        let d = check_deadlock(&qt, &m, &p);
        assert!(d.is_empty(), "{}", d.render_text());
        // Every interior task has exactly 3 counted + 1 self sender.
        for w in wait_for_graph(&qt, &m, &p) {
            assert_eq!(w.counted_senders.len(), 3, "{w:?}");
            assert_eq!(w.self_senders.len(), 1, "{w:?}");
        }
    }

    #[test]
    fn under_supplied_quorum_is_a_deadlock() {
        let qt = qt(4);
        let m = QuadrantMapper.map(&qt);
        let mut p = synthesize_quadtree_program(2);
        set_quorum(&mut p, 4); // demands the uncounted self-message too
        let d = check_deadlock(&qt, &m, &p);
        assert!(d.has_code(Code::DL001), "{}", d.render_text());
        assert!(d.has_errors());
        // One diagnostic per interior task (4 level-1 + 1 level-2).
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn over_supplied_quorum_warns() {
        let qt = qt(4);
        let m = QuadrantMapper.map(&qt);
        let mut p = synthesize_quadtree_program(2);
        set_quorum(&mut p, 2);
        let d = check_deadlock(&qt, &m, &p);
        assert!(d.has_code(Code::DL002), "{}", d.render_text());
        assert_eq!(d.error_count(), 0);
    }

    #[test]
    fn remapped_child_changes_supply() {
        let qt = qt(4);
        let mut m = QuadrantMapper.map(&qt);
        let p = synthesize_quadtree_program(2);
        // Co-locate one more child of the level-1 task over leaf block 0
        // with its parent: supply drops 3 -> 2 under quorum 3.
        let parent = qt.ids_by_level[1][0];
        let child = qt.graph.producers(parent)[1];
        m.assign(child, m.node_of(parent));
        let d = check_deadlock(&qt, &m, &p);
        assert!(d.has_code(Code::DL001), "{}", d.render_text());
    }

    #[test]
    fn static_level_quorum_applies_to_that_level_only() {
        let mut p = synthesize_quadtree_program(2);
        p.rules.push(Rule {
            label: "extra".into(),
            guard: Guard::Eq(Expr::MsgsReceivedAt(Box::new(Expr::Int(1))), Expr::Int(7)),
            actions: vec![],
        });
        let q = quorum_specs(&p);
        // The roving recLevel quorum registered level 1 first.
        assert_eq!(q[&1].expected, 3);
        assert_eq!(q[&2].expected, 3);
    }
}
