//! Pass 6b — shard-interference analysis: commutativity under a
//! [`ShardPlan`] (`SI002`–`SI004`), the machine-checkable
//! [`ShardCertificate`], and the `TC009` trace-replay check.
//!
//! ROADMAP item 1's parallel kernel wants to run each quad-tree quadrant
//! (the level-`L` blocks of a [`ShardPlan`]) on its own worker. That is
//! sound exactly when, within one epoch, the events mapped to one shard
//! commute — their footprints are disjoint or ordered by a happens-before
//! edge the program itself provides — and everything that crosses shards
//! is confined to §4's region boundary: the certified child-leader →
//! parent-leader merge routes above the cut. This pass mechanizes that
//! argument on top of the per-role footprints of [`crate::footprint`]:
//!
//! * **SI002** — two distinct send sites fire at the same role with
//!   overlapping `group_level` footprints: both write the same
//!   destination quorum slot, so a same-shard reordering changes the
//!   observable merge count (a write/write conflict).
//! * **SI003** — a reachable send addresses a leader in another shard
//!   from a cell that is not a leader of the level just below the target
//!   group: the message is not a region-boundary merge, so the certified
//!   boundary set cannot cover it.
//! * **SI004** — a receive handler writes scalar state. Deliveries are
//!   the only events that cross the epoch barrier (the merge quorum);
//!   a scalar write from a receive handler races the barrier, so its
//!   effect depends on delivery order within the epoch.
//!
//! The [`ShardCertificate`] then fixes the decomposition: the shard map,
//! the boundary hop-edge set, and the closed-form cross-shard message
//! bound in `s`, cross-checked against [`crate::certify()`]'s independently
//! derived `net.messages` total. [`check_shard_conformance`] (`TC009`)
//! replays a causal trace and verifies every observed cross-shard
//! delivery hop lies in the certified boundary edge set.

use crate::certify::{certify, CertConfig};
use crate::diag::{Code, Diagnostic, Diagnostics, Span};
use crate::footprint::{check_footprints, role_footprints};
use crate::opt::optimize_program;
use crate::reach::ReachConfig;
use std::collections::{BTreeMap, BTreeSet};
use wsn_core::{GridCoord, Hierarchy, HopEdge, ShardPlan};
use wsn_obs::{Json, TraceDocument};
use wsn_sim::{CausalEvent, CausalKind};
use wsn_synth::{Action, Guard, GuardedProgram};

/// The shard-certificate schema this encoder emits and this decoder
/// understands (versioned like programs and traces; a mismatch is a
/// clear error, not a misparse).
pub const SHARD_CERT_SCHEMA_VERSION: u64 = 1;

/// A machine-checkable shard-safety certificate: the decomposition, its
/// boundary edge set, and the certified cross-shard traffic bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCertificate {
    /// Grid side `s`.
    pub side: u32,
    /// Hierarchy depth `p = log₂ s`.
    pub depth: u8,
    /// Quad-tree cut level `L`; shards are the level-`L` blocks.
    pub cut_level: u8,
    /// Shard count `(s/2^L)²`.
    pub shard_count: u32,
    /// Cells per shard side `2^L`.
    pub block_side: u32,
    /// Live send sites per merge child (the certifier's `k`).
    pub k_send: u64,
    /// The certifier's total message count `Σ 4k(s/2^l)²` at this side.
    pub total_messages: u64,
    /// Certified cross-shard messages: `Σ_{l=L+1..p} 3k(s/2^l)²`.
    pub cross_shard_messages: u64,
    /// The cross-shard bound as mathematics in `s`.
    pub symbolic: String,
    /// Every directed cell hop any certified route takes across a shard
    /// boundary, sorted; a conforming run's cross-shard deliveries happen
    /// on exactly these edges.
    pub boundary_edges: Vec<HopEdge>,
}

impl ShardCertificate {
    /// The plan this certificate describes.
    pub fn plan(&self) -> ShardPlan {
        ShardPlan::new(self.side, self.cut_level)
    }

    /// Whether a directed cell hop is a certified boundary edge.
    pub fn is_boundary_edge(&self, from: GridCoord, to: GridCoord) -> bool {
        self.boundary_edges.binary_search(&(from, to)).is_ok()
    }

    /// Renders the certificate as terminal text.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "shard certificate: side {} cut level {} -> {} shard(s) of {}x{} cells\n  \
             cross-shard messages {} of {} total ({})\n  boundary edges ({}):\n",
            self.side,
            self.cut_level,
            self.shard_count,
            self.block_side,
            self.block_side,
            self.cross_shard_messages,
            self.total_messages,
            self.symbolic,
            self.boundary_edges.len()
        );
        for (from, to) in &self.boundary_edges {
            out.push_str(&format!(
                "    ({}, {}) -> ({}, {})\n",
                from.col, from.row, to.col, to.row
            ));
        }
        out
    }
}

/// Encodes a certificate as schema-versioned JSON.
pub fn shard_cert_to_json(cert: &ShardCertificate) -> Json {
    let edges = cert
        .boundary_edges
        .iter()
        .map(|(from, to)| {
            Json::Obj(vec![
                (
                    "from".to_owned(),
                    Json::Arr(vec![
                        Json::from_u64(u64::from(from.col)),
                        Json::from_u64(u64::from(from.row)),
                    ]),
                ),
                (
                    "to".to_owned(),
                    Json::Arr(vec![
                        Json::from_u64(u64::from(to.col)),
                        Json::from_u64(u64::from(to.row)),
                    ]),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "schema_version".to_owned(),
            Json::from_u64(SHARD_CERT_SCHEMA_VERSION),
        ),
        ("side".to_owned(), Json::from_u64(u64::from(cert.side))),
        ("depth".to_owned(), Json::from_u64(u64::from(cert.depth))),
        (
            "cut_level".to_owned(),
            Json::from_u64(u64::from(cert.cut_level)),
        ),
        (
            "shard_count".to_owned(),
            Json::from_u64(u64::from(cert.shard_count)),
        ),
        (
            "block_side".to_owned(),
            Json::from_u64(u64::from(cert.block_side)),
        ),
        ("k_send".to_owned(), Json::from_u64(cert.k_send)),
        (
            "total_messages".to_owned(),
            Json::from_u64(cert.total_messages),
        ),
        (
            "cross_shard_messages".to_owned(),
            Json::from_u64(cert.cross_shard_messages),
        ),
        ("symbolic".to_owned(), Json::Str(cert.symbolic.clone())),
        ("boundary_edges".to_owned(), Json::Arr(edges)),
    ])
}

/// Decodes a certificate from its JSON encoding.
pub fn shard_cert_from_json(v: &Json) -> Result<ShardCertificate, String> {
    let version = v
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("shard certificate without schema_version")?;
    if version != SHARD_CERT_SCHEMA_VERSION {
        return Err(format!(
            "unsupported shard-certificate schema_version {version} (this reader \
             understands {SHARD_CERT_SCHEMA_VERSION})"
        ));
    }
    let u = |key: &str| {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("shard certificate without {key}"))
    };
    let coord = |e: &Json, key: &str| -> Result<GridCoord, String> {
        let arr = e
            .get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("boundary edge without {key}"))?;
        match arr {
            [c, r] => Ok(GridCoord::new(
                u32::try_from(c.as_u64().ok_or("edge coord is not a number")?)
                    .map_err(|_| "edge coord overflows u32")?,
                u32::try_from(r.as_u64().ok_or("edge coord is not a number")?)
                    .map_err(|_| "edge coord overflows u32")?,
            )),
            _ => Err(format!("boundary edge {key} is not a [col, row] pair")),
        }
    };
    let mut boundary_edges = Vec::new();
    for e in v
        .get("boundary_edges")
        .and_then(Json::as_arr)
        .ok_or("shard certificate without boundary_edges")?
    {
        boundary_edges.push((coord(e, "from")?, coord(e, "to")?));
    }
    Ok(ShardCertificate {
        side: u32::try_from(u("side")?).map_err(|_| "side overflows u32")?,
        depth: u8::try_from(u("depth")?).map_err(|_| "depth overflows u8")?,
        cut_level: u8::try_from(u("cut_level")?).map_err(|_| "cut_level overflows u8")?,
        shard_count: u32::try_from(u("shard_count")?).map_err(|_| "shard_count overflows u32")?,
        block_side: u32::try_from(u("block_side")?).map_err(|_| "block_side overflows u32")?,
        k_send: u("k_send")?,
        total_messages: u("total_messages")?,
        cross_shard_messages: u("cross_shard_messages")?,
        symbolic: v
            .get("symbolic")
            .and_then(Json::as_str)
            .ok_or("shard certificate without symbolic")?
            .to_owned(),
        boundary_edges,
    })
}

/// Runs the full shard-interference analysis of `program` under `plan`:
/// well-formedness gate, footprint pass (`SI001`), commutativity pass
/// (`SI002`–`SI004`), and — when the program's recursion ceiling matches
/// the plan's hierarchy and it has a live send structure — the
/// [`ShardCertificate`] with its cross-check against the cost certifier.
pub fn analyze_shards(
    program: &GuardedProgram,
    plan: &ShardPlan,
    config: ReachConfig,
) -> (Option<ShardCertificate>, Diagnostics) {
    let mut diags = crate::wellformed::check_program(program);
    let evaluable = !diags
        .items()
        .iter()
        .any(|d| matches!(d.code, Code::WF002 | Code::WF003));
    if !evaluable {
        diags.sort();
        return (None, diags);
    }
    let side = plan.side();
    let p = plan.max_level();
    if program.max_level != p {
        diags.push(
            Diagnostic::error(
                Code::CC001,
                Span::Program,
                format!(
                    "program recursion ceiling maxrecLevel = {} diverges from the depth-{p} \
                     hierarchy of the side-{side} shard plan",
                    program.max_level
                ),
            )
            .with_suggestion("analyze the program at the deployment's hierarchy depth"),
        );
        diags.sort();
        return (None, diags);
    }

    let (footprints, fp_diags) = check_footprints(program, side, config);
    diags.extend(fp_diags);
    diags.extend(check_commutativity(program, plan, &footprints));

    // ---- The certificate, cross-checked against the cost certifier ----
    let (cert, cert_diags) = certify(program, &CertConfig::paper(side));
    diags.extend(cert_diags);
    let (_, facts, _) = optimize_program(program);
    let k_send = facts.live_send_sites(program) as u64;
    let total = cert
        .bound("net.messages")
        .map(|b| b.interval.hi as u64)
        .unwrap_or(0);
    let shard_cert = if k_send >= 1 {
        let cross = plan.cross_shard_closed_form(k_send);
        let cross_routes = plan.cross_shard_route_messages(k_send);
        let intra: u64 = (1..=p)
            .map(|l| {
                let merges = u64::from(side >> l).pow(2);
                let sends = if l <= plan.cut_level() { 4 } else { 1 };
                k_send * merges * sends
            })
            .sum();
        if cross != cross_routes || intra + cross != total {
            diags.push(
                Diagnostic::error(
                    Code::CC002,
                    Span::Program,
                    format!(
                        "shard decomposition does not account for the certified traffic: \
                         closed form {cross} cross-shard + {intra} intra-shard messages vs \
                         route enumeration {cross_routes} and certified total {total}"
                    ),
                )
                .with_suggestion("the shard geometry and the certifier disagree; file a bug"),
            );
            None
        } else if diags.has_errors() {
            // A certificate asserts shard safety; a program with
            // interference (or certification) errors has not earned one.
            None
        } else {
            Some(ShardCertificate {
                side,
                depth: p,
                cut_level: plan.cut_level(),
                shard_count: plan.shard_count(),
                block_side: plan.block_side(),
                k_send,
                total_messages: total,
                cross_shard_messages: cross,
                symbolic: plan.cross_shard_symbolic(k_send),
                boundary_edges: plan.boundary_hop_edges().into_iter().collect(),
            })
        }
    } else {
        None
    };
    diags.sort();
    (shard_cert, diags)
}

/// A send site named by (rule index, action path) — the dedup key for
/// `SI002` pair reporting.
type SitePath = (usize, Vec<usize>);

/// The commutativity pass proper: `SI002`–`SI004` from the per-role
/// footprints and the program text.
fn check_commutativity(
    program: &GuardedProgram,
    plan: &ShardPlan,
    footprints: &[wsn_core::RoleFootprint],
) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let hier = Hierarchy::new(plan.side());
    let p = hier.max_level();

    // SI002: two distinct sites firing at one role with overlapping
    // group_level footprints write the same destination quorum slot.
    let mut reported: BTreeSet<(SitePath, SitePath)> = BTreeSet::new();
    for fp in footprints {
        for (i, a) in fp.writes.iter().enumerate() {
            for b in &fp.writes[i + 1..] {
                if !a.overlaps(b) {
                    continue;
                }
                let key = (
                    (a.rule, a.path.clone()).min((b.rule, b.path.clone())),
                    (a.rule, a.path.clone()).max((b.rule, b.path.clone())),
                );
                if !reported.insert(key) {
                    continue;
                }
                let g_lo = a.lo.max(b.lo);
                let g_hi = a.hi.min(b.hi);
                diags.push(
                    Diagnostic::error(
                        Code::SI002,
                        Span::RulePair {
                            a: a.rule,
                            b: b.rule,
                        },
                        format!(
                            "write/write conflict at role {}: two send sites target the same \
                             quorum slot (group levels overlap on [{g_lo}, {g_hi}]), so the \
                             destination leader's merge count depends on same-shard event \
                             order",
                            fp.role
                        ),
                    )
                    .with_suggestion(
                        "make the sites' group levels disjoint or merge them into one send",
                    ),
                );
            }
        }
    }

    // SI003: a reachable send that leaves the sender's shard without
    // being a child-leader -> parent-leader merge (the only cross-shard
    // traffic §4 certifies, and the only edges in the boundary set).
    let mut cells_by_role: BTreeMap<u8, Vec<GridCoord>> = BTreeMap::new();
    for c in wsn_core::VirtualGrid::new(plan.side()).nodes() {
        cells_by_role
            .entry(hier.highest_leader_level(c))
            .or_default()
            .push(c);
    }
    let mut flagged: BTreeSet<((usize, Vec<usize>), i64)> = BTreeSet::new();
    for fp in footprints {
        for site in &fp.writes {
            for g in site.lo.max(1)..=site.hi.min(i64::from(p)) {
                let g8 = g as u8;
                // A send from a level-(g-1) leader to its level-g leader
                // is a certified boundary merge wherever it crosses.
                if fp.role >= g8 - 1 {
                    continue;
                }
                let offenders: Vec<GridCoord> = cells_by_role
                    .get(&fp.role)
                    .map(|cells| {
                        cells
                            .iter()
                            .copied()
                            .filter(|&c| plan.shard_of(c) != plan.shard_of(hier.leader(c, g8)))
                            .collect()
                    })
                    .unwrap_or_default();
                let Some(&witness) = offenders.first() else {
                    continue;
                };
                if !flagged.insert(((site.rule, site.path.clone()), g)) {
                    continue;
                }
                diags.push(
                    Diagnostic::error(
                        Code::SI003,
                        Span::Action {
                            rule: site.rule,
                            path: site.path.clone(),
                        },
                        format!(
                            "cross-shard send off the region boundary: a role-{} cell (e.g. \
                             ({}, {})) addresses its level-{g} leader in another shard, but \
                             is not a level-{} leader — {} cell(s) of this role leak across \
                             the cut-{} boundary",
                            fp.role,
                            witness.col,
                            witness.row,
                            g - 1,
                            offenders.len(),
                            plan.cut_level()
                        ),
                    )
                    .with_suggestion(
                        "route the summary through the hierarchy (child leader to parent \
                         leader) instead of sending directly across shards",
                    ),
                );
            }
        }
    }

    // SI004: receive handlers that write scalar state. The quorum guard
    // is the epoch barrier; a delivery that mutates scalars makes the
    // post-barrier state depend on intra-epoch delivery order.
    for (r, rule) in program.rules.iter().enumerate() {
        if !guard_is_receive(&rule.guard) {
            continue;
        }
        let mut path = Vec::new();
        report_scalar_writes(r, &rule.actions, &mut path, &mut diags);
    }

    diags
}

fn guard_is_receive(g: &Guard) -> bool {
    match g {
        Guard::Received => true,
        Guard::And(a, b) => guard_is_receive(a) || guard_is_receive(b),
        _ => false,
    }
}

fn report_scalar_writes(
    rule: usize,
    actions: &[Action],
    path: &mut Vec<usize>,
    diags: &mut Diagnostics,
) {
    for (i, action) in actions.iter().enumerate() {
        path.push(i);
        match action {
            Action::Set(name, _) => diags.push(
                Diagnostic::error(
                    Code::SI004,
                    Span::Action {
                        rule,
                        path: path.clone(),
                    },
                    format!(
                        "receive handler writes scalar state {name:?}: the write races the \
                         epoch barrier, so the post-quorum state depends on delivery order \
                         within the epoch"
                    ),
                )
                .with_suggestion(
                    "move the write behind the quorum guard (a state rule); receive handlers \
                     should only merge and count",
                ),
            ),
            Action::IfElse {
                then, otherwise, ..
            } => {
                path.push(0);
                report_scalar_writes(rule, then, path, diags);
                path.pop();
                path.push(1);
                report_scalar_writes(rule, otherwise, path, diags);
                path.pop();
            }
            _ => {}
        }
        path.pop();
    }
}

/// `TC009`: replays a causal trace against a [`ShardCertificate`] and
/// verifies every observed cross-shard delivery hop is a certified
/// boundary edge. Needs a trace recorded with causal tracing *and* node
/// placements (`node` records with cells); refuses — with an error, so
/// gates trip — when either is missing.
pub fn check_shard_conformance(cert: &ShardCertificate, doc: &TraceDocument) -> Diagnostics {
    let mut diags = Diagnostics::new();
    if let Some(meta) = &doc.meta {
        if meta.grid != u64::from(cert.side) {
            diags.push(Diagnostic::error(
                Code::TC007,
                Span::Program,
                format!(
                    "trace records a side-{} grid but the shard certificate covers side {}",
                    meta.grid, cert.side
                ),
            ));
            diags.sort();
            return diags;
        }
    }
    if doc.causal.is_empty() {
        diags.push(
            Diagnostic::error(
                Code::TC009,
                Span::Program,
                "trace has no causal records; cross-shard deliveries cannot be replayed".to_owned(),
            )
            .with_suggestion("re-record with causal tracing enabled"),
        );
        diags.sort();
        return diags;
    }
    let cells: BTreeMap<u64, GridCoord> = doc
        .nodes
        .iter()
        .filter_map(|n| n.cell.map(|(col, row)| (n.id, GridCoord::new(col, row))))
        .collect();
    if cells.is_empty() {
        diags.push(
            Diagnostic::error(
                Code::TC009,
                Span::Program,
                "trace has causal records but no node placements (cells); deliveries cannot \
                 be mapped to shards"
                    .to_owned(),
            )
            .with_suggestion("re-record with a writer that stamps node cells"),
        );
        diags.sort();
        return diags;
    }
    let plan = cert.plan();
    let sends: BTreeMap<u64, &CausalEvent> = doc
        .causal
        .iter()
        .filter(|e| e.kind == CausalKind::Send)
        .map(|e| (e.seq, e))
        .collect();
    let mut checked = 0u64;
    for deliver in doc.causal.iter().filter(|e| e.kind == CausalKind::Deliver) {
        let Some(send) = sends.get(&deliver.cause) else {
            continue;
        };
        if send.node == deliver.node {
            continue;
        }
        let (Some(&from), Some(&to)) = (
            cells.get(&(send.node as u64)),
            cells.get(&(deliver.node as u64)),
        ) else {
            diags.push(Diagnostic::error(
                Code::TC009,
                Span::Program,
                format!(
                    "delivery seq {} involves node {} or {} with no recorded cell",
                    deliver.seq, send.node, deliver.node
                ),
            ));
            continue;
        };
        checked += 1;
        if plan.shard_of(from) == plan.shard_of(to) {
            continue;
        }
        if !cert.is_boundary_edge(from, to) {
            diags.push(
                Diagnostic::error(
                    Code::TC009,
                    Span::Node(to),
                    format!(
                        "cross-shard delivery off the certified boundary: {:?} hop from cell \
                         ({}, {}) [shard {}] to cell ({}, {}) [shard {}] at tick {} is not a \
                         boundary edge of the cut-{} plan",
                        deliver.label,
                        from.col,
                        from.row,
                        plan.shard_of(from),
                        to.col,
                        to.row,
                        plan.shard_of(to),
                        deliver.time.ticks(),
                        cert.cut_level
                    ),
                )
                .with_suggestion(
                    "either the program leaks traffic across shards or the certificate's cut \
                     level does not match the intended decomposition",
                ),
            );
        }
    }
    if checked == 0 {
        diags.push(
            Diagnostic::error(
                Code::TC009,
                Span::Program,
                "trace contains no inter-node delivery with mapped cells; nothing to verify"
                    .to_owned(),
            )
            .with_suggestion("record the application phase with causal tracing enabled"),
        );
    }
    diags.sort();
    diags
}

/// `TC010`: reconciles a trace's per-shard telemetry (the
/// `shard=`-labeled counters the sharded runtime publishes) against the
/// [`ShardCertificate`] and the kernel's own independent totals:
///
/// 1. the telemetry covers exactly the certificate's shard count;
/// 2. the per-shard event counters (including the global pseudo-shard)
///    sum to `shard.events.total`, the kernel's own dispatch count for
///    the same runs — an undercounting or double-counting tap anywhere
///    in the per-shard accounting breaks this exactly;
/// 3. cross-shard events staged and applied balance;
/// 4. the observed cross-shard event total lies inside the certified
///    envelope `[cross_shard_messages, total_messages]`: every certified
///    boundary merge (`Σ 3k(s/2^l)²` above the cut) crosses at least
///    once, query dissemination may add more, and no conforming run can
///    cross more often than the certified message total.
///
/// Refuses — with an error, so gates trip — when the trace carries no
/// per-shard telemetry at all.
pub fn check_shard_accounting(cert: &ShardCertificate, doc: &TraceDocument) -> Diagnostics {
    let mut diags = Diagnostics::new();
    if let Some(meta) = &doc.meta {
        if meta.grid != u64::from(cert.side) {
            diags.push(Diagnostic::error(
                Code::TC007,
                Span::Program,
                format!(
                    "trace records a side-{} grid but the shard certificate covers side {}",
                    meta.grid, cert.side
                ),
            ));
            diags.sort();
            return diags;
        }
    }
    let counter = |name: &str| {
        doc.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    };
    let Some(total) = counter("shard.events.total") else {
        diags.push(
            Diagnostic::error(
                Code::TC010,
                Span::Program,
                "trace has no per-shard telemetry (no shard.events.total counter); the \
                 accounting cannot be reconciled"
                    .to_owned(),
            )
            .with_suggestion(
                "record the trace from a sharded run with telemetry enabled and the shard \
                 registry absorbed",
            ),
        );
        diags.sort();
        return diags;
    };
    let shard_series =
        |metric: &str, shard: &str| counter(&wsn_obs::labeled(metric, &[("shard", shard)]));
    if let Some(count) = doc
        .gauges
        .iter()
        .find(|(k, _)| k == "shard.count")
        .map(|&(_, v)| v)
    {
        if count != f64::from(cert.shard_count) {
            diags.push(Diagnostic::error(
                Code::TC010,
                Span::Program,
                format!(
                    "trace telemetry covers {count} shards but the certificate's cut-{} plan \
                     has {}",
                    cert.cut_level, cert.shard_count
                ),
            ));
            diags.sort();
            return diags;
        }
    }
    let mut events_sum = 0u64;
    let mut staged_sum = 0u64;
    let mut applied_sum = 0u64;
    for shard in 0..cert.shard_count {
        let label = shard.to_string();
        match shard_series("shard.events", &label) {
            Some(v) => events_sum += v,
            None => diags.push(Diagnostic::error(
                Code::TC010,
                Span::Program,
                format!("trace telemetry has no shard.events series for shard {shard}"),
            )),
        }
        staged_sum += shard_series("shard.cross.staged", &label).unwrap_or(0);
        applied_sum += shard_series("shard.cross.applied", &label).unwrap_or(0);
    }
    events_sum += shard_series("shard.events", "global").unwrap_or(0);
    if diags.has_errors() {
        diags.sort();
        return diags;
    }
    if events_sum != total {
        diags.push(
            Diagnostic::error(
                Code::TC010,
                Span::Program,
                format!(
                    "per-shard event counters sum to {events_sum} but the kernel dispatched \
                     {total} events in the same runs"
                ),
            )
            .with_suggestion(
                "some dispatches were counted on no shard (undercount) or on several \
                 (double count); the per-shard accounting arrays are corrupted",
            ),
        );
    }
    if staged_sum != applied_sum {
        diags.push(Diagnostic::error(
            Code::TC010,
            Span::Program,
            format!(
                "cross-shard events do not balance: {staged_sum} staged but {applied_sum} \
                 applied"
            ),
        ));
    }
    if applied_sum < cert.cross_shard_messages || applied_sum > cert.total_messages {
        diags.push(
            Diagnostic::error(
                Code::TC010,
                Span::Program,
                format!(
                    "observed {applied_sum} cross-shard events, outside the certified \
                     envelope [{}, {}] ({} boundary merges, {} total messages)",
                    cert.cross_shard_messages,
                    cert.total_messages,
                    cert.symbolic,
                    cert.total_messages
                ),
            )
            .with_suggestion(
                "either traffic leaks across the cut beyond the certified workload or \
                 certified boundary merges never crossed",
            ),
        );
    }
    diags.sort();
    diags
}

/// Convenience wrapper for role-footprint inspection (used by the CLI's
/// verbose output and tests): footprints of `program` at the plan's side.
pub fn plan_footprints(
    program: &GuardedProgram,
    plan: &ShardPlan,
    config: ReachConfig,
) -> Vec<wsn_core::RoleFootprint> {
    role_footprints(program, plan.side(), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_synth::{synthesize_gather_program, synthesize_quadtree_program, Expr};

    fn fig4_cert(side: u32, cut: u8) -> (Option<ShardCertificate>, Diagnostics) {
        let depth = u8::try_from(side.trailing_zeros()).unwrap();
        let program = synthesize_quadtree_program(depth);
        analyze_shards(&program, &ShardPlan::new(side, cut), ReachConfig::default())
    }

    #[test]
    fn figure4_is_shard_safe_at_every_cut() {
        for (side, cut) in [(4u32, 1u8), (4, 2), (8, 1), (8, 2), (8, 3)] {
            let (cert, diags) = fig4_cert(side, cut);
            assert_eq!(
                diags.error_count(),
                0,
                "side {side} cut {cut}: {}",
                diags.render_text()
            );
            let cert = cert.expect("clean figure-4 must certify");
            assert_eq!(cert.k_send, 1);
            let plan = ShardPlan::new(side, cut);
            assert_eq!(
                cert.cross_shard_messages,
                plan.cross_shard_closed_form(1),
                "side {side} cut {cut}"
            );
            assert_eq!(
                cert.boundary_edges,
                plan.boundary_hop_edges().into_iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn certificate_cross_shard_bound_matches_certifier_total() {
        // The machine cross-check the acceptance criteria call for:
        // cross + intra accounts for every certified message.
        let (cert, _) = fig4_cert(4, 1);
        let cert = cert.unwrap();
        assert_eq!(cert.total_messages, 20);
        assert_eq!(cert.cross_shard_messages, 3);
        let (c8, _) = fig4_cert(8, 2);
        let c8 = c8.unwrap();
        assert_eq!(c8.total_messages, 84);
        assert_eq!(c8.cross_shard_messages, 3);
    }

    #[test]
    fn gather_program_leaks_across_shards() {
        // The star-shaped alternative sends every cell's summary straight
        // to the global root: not boundary traffic once there is more
        // than one shard.
        let program = synthesize_gather_program(2, 4);
        let (_, diags) = analyze_shards(&program, &ShardPlan::new(4, 1), ReachConfig::default());
        assert!(diags.has_code(Code::SI003), "{}", diags.render_text());
        assert!(diags.has_errors());
        // With a single shard there is nothing to cross.
        let (_, diags) = analyze_shards(&program, &ShardPlan::new(4, 2), ReachConfig::default());
        assert!(!diags.has_code(Code::SI003), "{}", diags.render_text());
    }

    #[test]
    fn leak_mutation_trips_si002_and_si003() {
        let mut program = synthesize_quadtree_program(2);
        program.rules[0]
            .actions
            .push(wsn_synth::Action::SendSummaryToLeader {
                group_level: Expr::var("maxrecLevel"),
                data_level: Expr::Int(0),
            });
        let (_, diags) = analyze_shards(&program, &ShardPlan::new(4, 1), ReachConfig::default());
        assert!(diags.has_code(Code::SI003), "{}", diags.render_text());
        assert!(diags.has_code(Code::SI002), "{}", diags.render_text());
        // SI002 is cut-independent: the duplicate write trips even with
        // one shard.
        let (_, diags) = analyze_shards(&program, &ShardPlan::new(4, 2), ReachConfig::default());
        assert!(diags.has_code(Code::SI002), "{}", diags.render_text());
    }

    #[test]
    fn scalar_write_in_receive_handler_is_si004() {
        let mut program = synthesize_quadtree_program(2);
        for rule in &mut program.rules {
            if guard_is_receive(&rule.guard) {
                rule.actions
                    .push(wsn_synth::Action::Set("transmit".into(), Expr::Bool(true)));
            }
        }
        let (_, diags) = analyze_shards(&program, &ShardPlan::new(4, 1), ReachConfig::default());
        assert!(diags.has_code(Code::SI004), "{}", diags.render_text());
        assert!(diags.has_errors());
    }

    #[test]
    fn depth_mismatch_refuses_a_certificate() {
        let program = synthesize_quadtree_program(3);
        let (cert, diags) = analyze_shards(&program, &ShardPlan::new(4, 1), ReachConfig::default());
        assert!(cert.is_none());
        assert!(diags.has_code(Code::CC001), "{}", diags.render_text());
    }

    #[test]
    fn certificate_json_round_trips() {
        let (cert, _) = fig4_cert(8, 1);
        let cert = cert.unwrap();
        let json = shard_cert_to_json(&cert);
        let parsed = shard_cert_from_json(&json).unwrap();
        assert_eq!(parsed, cert);
        // Version gate.
        let wrong = json
            .render()
            .replace("\"schema_version\":1", "\"schema_version\":9");
        let err = shard_cert_from_json(&Json::parse(&wrong).unwrap()).unwrap_err();
        assert!(err.contains("schema_version 9"), "{err}");
    }

    #[test]
    fn tc009_rejects_traces_without_causal_or_cells() {
        let (cert, _) = fig4_cert(4, 1);
        let cert = cert.unwrap();
        let doc = TraceDocument::new();
        let d = check_shard_conformance(&cert, &doc);
        assert!(d.has_code(Code::TC009), "{}", d.render_text());
    }

    /// A side-4 cut-1 telemetry document whose accounting reconciles:
    /// 4 shards plus the global slot summing to the kernel total, with
    /// balanced cross counters inside the certified envelope [3, 20].
    fn balanced_accounting_doc() -> TraceDocument {
        let mut doc = TraceDocument::new();
        doc.counters.push(("shard.events.total".to_string(), 100));
        for (shard, events, staged, applied) in [
            ("0", 30u64, 2u64, 1u64),
            ("1", 25, 1, 2),
            ("2", 20, 1, 1),
            ("3", 15, 0, 0),
            ("global", 10, 0, 0),
        ] {
            let l = [("shard", shard)];
            doc.counters
                .push((wsn_obs::labeled("shard.events", &l), events));
            if shard != "global" {
                doc.counters
                    .push((wsn_obs::labeled("shard.cross.staged", &l), staged));
                doc.counters
                    .push((wsn_obs::labeled("shard.cross.applied", &l), applied));
            }
        }
        doc.gauges.push(("shard.count".to_string(), 4.0));
        doc
    }

    #[test]
    fn tc010_accepts_reconciled_accounting() {
        let (cert, _) = fig4_cert(4, 1);
        let cert = cert.unwrap();
        let d = check_shard_accounting(&cert, &balanced_accounting_doc());
        assert!(!d.has_errors(), "{}", d.render_text());
    }

    #[test]
    fn tc010_rejects_traces_without_shard_telemetry() {
        let (cert, _) = fig4_cert(4, 1);
        let cert = cert.unwrap();
        let d = check_shard_accounting(&cert, &TraceDocument::new());
        assert!(d.has_code(Code::TC010), "{}", d.render_text());
        assert!(d.has_errors());
    }

    #[test]
    fn tc010_catches_an_event_undercount() {
        let (cert, _) = fig4_cert(4, 1);
        let cert = cert.unwrap();
        let mut doc = balanced_accounting_doc();
        for (k, v) in &mut doc.counters {
            if k == "shard.events|shard=0" {
                *v -= 1;
            }
        }
        let d = check_shard_accounting(&cert, &doc);
        assert!(d.has_code(Code::TC010), "{}", d.render_text());
        assert!(d.render_text().contains("sum to 99"), "{}", d.render_text());
    }

    #[test]
    fn tc010_catches_unbalanced_and_out_of_envelope_cross_counts() {
        let (cert, _) = fig4_cert(4, 1);
        let cert = cert.unwrap();
        let mut doc = balanced_accounting_doc();
        for (k, v) in &mut doc.counters {
            if k == "shard.cross.applied|shard=1" {
                *v += 30; // unbalanced AND beyond total_messages = 20
            }
        }
        let d = check_shard_accounting(&cert, &doc);
        assert!(d.has_code(Code::TC010), "{}", d.render_text());
        let text = d.render_text();
        assert!(text.contains("do not balance"), "{text}");
        assert!(text.contains("envelope [3, 20]"), "{text}");
        // Too few crossings (below the certified boundary merges) also
        // trips the envelope.
        let mut doc = balanced_accounting_doc();
        for (k, v) in &mut doc.counters {
            if k.starts_with("shard.cross.") {
                *v = 0;
            }
        }
        let d = check_shard_accounting(&cert, &doc);
        assert!(d.has_code(Code::TC010), "{}", d.render_text());
    }

    #[test]
    fn tc010_catches_shard_count_and_grid_mismatches() {
        let (cert, _) = fig4_cert(4, 1);
        let cert = cert.unwrap();
        let mut doc = balanced_accounting_doc();
        for (k, v) in &mut doc.gauges {
            if k == "shard.count" {
                *v = 16.0;
            }
        }
        let d = check_shard_accounting(&cert, &doc);
        assert!(d.has_code(Code::TC010), "{}", d.render_text());
        let mut doc = balanced_accounting_doc();
        doc.meta = Some(wsn_obs::TraceMeta {
            grid: 8,
            ..Default::default()
        });
        let d = check_shard_accounting(&cert, &doc);
        assert!(d.has_code(Code::TC007), "{}", d.render_text());
    }

    #[test]
    fn tc010_reports_a_missing_shard_series() {
        let (cert, _) = fig4_cert(4, 1);
        let cert = cert.unwrap();
        let mut doc = balanced_accounting_doc();
        doc.counters.retain(|(k, _)| k != "shard.events|shard=2");
        let d = check_shard_accounting(&cert, &doc);
        assert!(d.has_code(Code::TC010), "{}", d.render_text());
        assert!(
            d.render_text()
                .contains("no shard.events series for shard 2"),
            "{}",
            d.render_text()
        );
    }
}
