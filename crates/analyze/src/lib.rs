//! # wsn-analyze — static analysis of synthesized WSN artifacts
//!
//! The paper's methodology synthesizes per-node programs from a mapped
//! task graph; this crate verifies those artifacts *before* they are
//! deployed (or even code-generated), the same way a compiler front-end
//! lints an AST. Every pass reports through one structured diagnostic
//! model ([`diag`]): severity, stable code, a span into the analyzed IR,
//! a message, and an optional suggested fix, renderable as terminal text
//! or JSON.
//!
//! Passes:
//!
//! 1. **Well-formedness** ([`wellformed`]) — declarations, receive-only
//!    constructs, constant initializers (`WF001`–`WF005`, `WF008`,
//!    `WF009`).
//! 2. **Reachability & determinism** ([`reach`]) — an exhaustive bounded
//!    exploration of the rule system that mirrors the interpreter's scan
//!    semantics: unsatisfiable guards, scan-order-observable overlaps,
//!    livelock, and exact index intervals for `msgsReceived[·]` and
//!    summary levels (`RD001`–`RD004`, `WF006`, `WF007`, `WF010`).
//! 3. **Graph & mapping structure** ([`graphcheck`]) — cycle witnesses,
//!    orphan tasks, level monotonicity, and the §4.1 coverage and
//!    spatial-correlation sweeps (`GM001`–`GM005`).
//! 4. **Deadlock** ([`deadlock`]) — the cross-node wait-for structure
//!    induced by mapping and merge quorums (`DL001`, `DL002`).
//! 5. **Cost budget** ([`budget`]) — priced mapping vs mission budget
//!    (`CB001`–`CB004`).
//!
//! 6. **Shard interference** ([`footprint`], [`shard`]) — per-role
//!    read/write footprints in region space and commutativity under a
//!    quad-tree [`wsn_core::ShardPlan`], yielding a machine-checkable
//!    [`shard::ShardCertificate`] with the closed-form cross-shard
//!    message bound (`SI001`–`SI004`, trace replay `TC009`).
//!
//! [`verified`] gates synthesis and code generation on the verdict:
//! error-bearing artifacts are refused unless the caller opts out.
//! [`model_json`] gives programs a stable JSON encoding so external
//! artifacts can be linted too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod certify;
pub mod conform;
pub mod deadlock;
pub mod diag;
pub mod footprint;
pub mod frame;
pub mod graphcheck;
pub mod model_json;
pub mod opt;
pub mod reach;
pub mod shard;
pub mod sym;
pub mod verified;
pub mod wellformed;

pub use budget::check_budget;
pub use certify::{
    certify, BoundKind, CertConfig, Certificate, CertifiedBound, Interval, PayloadProfile,
};
pub use conform::check_conformance;
pub use deadlock::{check_deadlock, quorum_specs, wait_for_graph, QuorumSpec, Wait};
pub use diag::{Code, Diagnostic, Diagnostics, Severity, Span};
pub use footprint::{check_footprints, role_footprints};
pub use frame::{
    analyze_frames, check_layout_table, check_stamp_width, check_variant_table,
    frame_cert_from_json, frame_cert_to_json, recompute_data_units, FrameCertificate,
    FrameLevelBound, RolePayload, FRAME_CERT_SCHEMA_VERSION,
};
pub use graphcheck::{check_graph, check_mapping, find_cycle};
pub use model_json::{program_from_json, program_to_json, PROGRAM_SCHEMA_VERSION};
pub use opt::{optimize_program, AbsVal, OptFacts};
pub use reach::{check_dynamics, explore, explore_with_levels, ReachConfig, ReachReport};
pub use shard::{
    analyze_shards, check_shard_accounting, check_shard_conformance, shard_cert_from_json,
    shard_cert_to_json, ShardCertificate, SHARD_CERT_SCHEMA_VERSION,
};
pub use sym::Sym;
pub use verified::{render_figure4_checked, synthesize_checked, CheckedError, Enforcement};
pub use wellformed::check_program;

use wsn_core::{CostBudget, CostModel};
use wsn_synth::{GuardedProgram, Mapping, QuadTree, TaskGraph};

/// Analyzes a program: well-formedness, then (when the program is sound
/// enough to evaluate — no unbound reads or writes) the reachability
/// pass. Diagnostics come back sorted errors-first.
pub fn analyze_program(program: &GuardedProgram) -> Diagnostics {
    analyze_program_with(program, ReachConfig::default())
}

/// [`analyze_program`] with explicit exploration limits.
pub fn analyze_program_with(program: &GuardedProgram, config: ReachConfig) -> Diagnostics {
    let mut diags = wellformed::check_program(program);
    let evaluable = !diags
        .items()
        .iter()
        .any(|d| matches!(d.code, Code::WF002 | Code::WF003));
    if evaluable {
        diags.extend(reach::check_dynamics(program, config));
    }
    diags.sort();
    diags
}

/// Analyzes a task graph's structure.
pub fn analyze_graph(graph: &TaskGraph) -> Diagnostics {
    let mut diags = graphcheck::check_graph(graph);
    diags.sort();
    diags
}

/// Analyzes a mapping: graph structure plus the §4.1 constraint sweeps.
pub fn analyze_mapping(qt: &QuadTree, mapping: &Mapping) -> Diagnostics {
    let mut diags = graphcheck::check_graph(&qt.graph);
    diags.extend(graphcheck::check_mapping(qt, mapping));
    diags.sort();
    diags
}

/// The full design-time sweep over one deployment: program, graph,
/// mapping, cross-node deadlock analysis, and — when the deployment's
/// side admits one — the symbolic cost certification crosscheck
/// (`CC0xx`: optimizer facts plus program-vs-hierarchy divergence).
pub fn analyze_deployment(
    qt: &QuadTree,
    mapping: &Mapping,
    program: &GuardedProgram,
) -> Diagnostics {
    let mut diags = analyze_program(program);
    diags.extend(graphcheck::check_graph(&qt.graph));
    diags.extend(graphcheck::check_mapping(qt, mapping));
    diags.extend(deadlock::check_deadlock(qt, mapping, program));
    if qt.side >= 2 && qt.side.is_power_of_two() {
        let (_, cert_diags) = certify::certify(program, &certify::CertConfig::paper(qt.side));
        diags.extend(cert_diags);
    }
    diags.sort();
    diags
}

/// Prices a mapping and lints it against a [`CostBudget`].
pub fn analyze_budget(
    qt: &QuadTree,
    mapping: &Mapping,
    cost: &CostModel,
    budget: &CostBudget,
) -> Diagnostics {
    let mut diags = budget::check_budget(qt, mapping, cost, budget);
    diags.sort();
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_synth::{quadtree_task_graph, synthesize_quadtree_program, Mapper, QuadrantMapper};

    #[test]
    fn figure4_deployment_has_zero_errors() {
        let qt = quadtree_task_graph(4, &|l| u64::from(l) + 1, &|l| u64::from(l));
        let m = QuadrantMapper.map(&qt);
        let p = synthesize_quadtree_program(2);
        let d = analyze_deployment(&qt, &m, &p);
        assert_eq!(d.error_count(), 0, "{}", d.render_text());
        // The paper's scan-order overlap is the only expected warning
        // class.
        assert!(
            d.codes().iter().all(|&c| c == Code::RD002),
            "{}",
            d.render_text()
        );
    }

    #[test]
    fn unsound_program_skips_the_dynamics_pass() {
        let mut p = synthesize_quadtree_program(1);
        p.rules[0].actions.push(wsn_synth::Action::Set(
            "ghost".into(),
            wsn_synth::Expr::Int(1),
        ));
        let d = analyze_program(&p);
        assert!(d.has_code(Code::WF003));
        // No RD findings: evaluation over unbound names is meaningless.
        assert!(d
            .codes()
            .iter()
            .all(|c| !matches!(c, Code::RD001 | Code::RD002 | Code::RD003)));
        // Errors sort first.
        assert_eq!(d.items()[0].severity, Severity::Error);
    }
}
