//! Symbolic cost expressions over the grid side `s = √N`.
//!
//! The §4 analysis expresses every quad-tree cost as a closed form in the
//! grid side and the hierarchy depth `p = log₂ s`: a level `l ∈ 1..=p`
//! holds `(s/2^l)²` merges whose children sit `2^(l−1)` and `2·2^(l−1)`
//! hops away. [`Sym`] is that language as a tiny AST: enough to *state*
//! the certified bounds symbolically (so a certificate is readable as
//! mathematics, not just as two numbers) and to *evaluate* them exactly
//! for a concrete side. The certifier cross-checks its numeric
//! accumulation against [`Sym::eval`] of the stated form, so the printed
//! formula provably matches the printed interval.

use std::fmt;

/// A symbolic integer expression in the grid side `s`, the depth
/// `p = log₂ s`, and — inside a [`Sym::Sum`] — the bound level variable
/// `l`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sym {
    /// Integer literal.
    Int(i64),
    /// The grid side `s` (√N).
    Side,
    /// The hierarchy depth `p = log₂ s`.
    Depth,
    /// The bound level variable `l` of the innermost enclosing sum.
    Level,
    /// `2^e`.
    Pow2(Box<Sym>),
    /// `a + b`.
    Add(Box<Sym>, Box<Sym>),
    /// `a − b`.
    Sub(Box<Sym>, Box<Sym>),
    /// `a · b`.
    Mul(Box<Sym>, Box<Sym>),
    /// `a / b` (exact in every certified form: `s/2^l` with `l ≤ p`).
    Div(Box<Sym>, Box<Sym>),
    /// `e²`.
    Sq(Box<Sym>),
    /// `Σ_{l=1..p} body`.
    Sum(Box<Sym>),
}

impl std::ops::Add for Sym {
    type Output = Sym;
    fn add(self, other: Sym) -> Sym {
        Sym::Add(Box::new(self), Box::new(other))
    }
}

impl std::ops::Sub for Sym {
    type Output = Sym;
    fn sub(self, other: Sym) -> Sym {
        Sym::Sub(Box::new(self), Box::new(other))
    }
}

impl std::ops::Mul for Sym {
    type Output = Sym;
    fn mul(self, other: Sym) -> Sym {
        Sym::Mul(Box::new(self), Box::new(other))
    }
}

impl std::ops::Div for Sym {
    type Output = Sym;
    fn div(self, other: Sym) -> Sym {
        Sym::Div(Box::new(self), Box::new(other))
    }
}

impl Sym {
    /// `Σ_{l=1..p} self` helper.
    pub fn sum_over_levels(self) -> Sym {
        Sym::Sum(Box::new(self))
    }

    /// `(s/2^l)²` — the number of level-`l` merges.
    pub fn merges_at_level() -> Sym {
        Sym::Sq(Box::new(Sym::Side / Sym::Pow2(Box::new(Sym::Level))))
    }

    /// `2^(l−1)` — the quadrant side `q` at level `l`.
    pub fn quadrant_side() -> Sym {
        Sym::Pow2(Box::new(Sym::Level - Sym::Int(1)))
    }

    /// Evaluates for a concrete `side` (a power of two). `level` binds
    /// the innermost [`Sym::Level`]; it is `None` outside any sum.
    pub fn eval(&self, side: u32) -> i64 {
        self.eval_at(side, None)
    }

    fn eval_at(&self, side: u32, level: Option<u32>) -> i64 {
        let v = match self {
            Sym::Int(v) => i128::from(*v),
            Sym::Side => i128::from(side),
            Sym::Depth => i128::from(side.trailing_zeros()),
            Sym::Level => i128::from(level.expect("Level outside a Sum")),
            Sym::Pow2(e) => {
                let e = e.eval_at(side, level);
                assert!((0..=62).contains(&e), "2^{e} out of range");
                1i128 << e
            }
            Sym::Add(a, b) => {
                i128::from(a.eval_at(side, level)) + i128::from(b.eval_at(side, level))
            }
            Sym::Sub(a, b) => {
                i128::from(a.eval_at(side, level)) - i128::from(b.eval_at(side, level))
            }
            Sym::Mul(a, b) => {
                i128::from(a.eval_at(side, level)) * i128::from(b.eval_at(side, level))
            }
            Sym::Div(a, b) => {
                let d = b.eval_at(side, level);
                assert!(d != 0, "division by zero");
                i128::from(a.eval_at(side, level)) / i128::from(d)
            }
            Sym::Sq(e) => {
                let v = i128::from(e.eval_at(side, level));
                v * v
            }
            Sym::Sum(body) => {
                assert!(side.is_power_of_two(), "side must be a power of two");
                let p = side.trailing_zeros();
                (1..=p)
                    .map(|l| i128::from(body.eval_at(side, Some(l))))
                    .sum()
            }
        };
        i64::try_from(v).expect("symbolic value overflows i64")
    }

    fn precedence(&self) -> u8 {
        match self {
            Sym::Add(..) | Sym::Sub(..) => 0,
            Sym::Mul(..) | Sym::Div(..) => 1,
            Sym::Int(_) | Sym::Side | Sym::Depth | Sym::Level => 2,
            Sym::Pow2(_) | Sym::Sq(_) | Sym::Sum(_) => 2,
        }
    }

    fn fmt_child(&self, child: &Sym, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if child.precedence() < self.precedence() {
            write!(f, "({child})")
        } else {
            write!(f, "{child}")
        }
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Int(v) => write!(f, "{v}"),
            Sym::Side => write!(f, "s"),
            Sym::Depth => write!(f, "p"),
            Sym::Level => write!(f, "l"),
            Sym::Pow2(e) => match e.as_ref() {
                Sym::Int(_) | Sym::Level | Sym::Depth | Sym::Side => write!(f, "2^{e}"),
                other => write!(f, "2^({other})"),
            },
            Sym::Add(a, b) => {
                self.fmt_child(a, f)?;
                write!(f, " + ")?;
                self.fmt_child(b, f)
            }
            Sym::Sub(a, b) => {
                self.fmt_child(a, f)?;
                write!(f, " - ")?;
                // Subtraction is left-associative: parenthesize same-level RHS.
                if b.precedence() <= self.precedence() {
                    write!(f, "({b})")
                } else {
                    write!(f, "{b}")
                }
            }
            Sym::Mul(a, b) => {
                self.fmt_child(a, f)?;
                write!(f, "*")?;
                self.fmt_child(b, f)
            }
            Sym::Div(a, b) => {
                self.fmt_child(a, f)?;
                write!(f, "/")?;
                if b.precedence() <= self.precedence() {
                    write!(f, "({b})")
                } else {
                    write!(f, "{b}")
                }
            }
            Sym::Sq(e) => match e.as_ref() {
                Sym::Int(_) | Sym::Side | Sym::Depth | Sym::Level | Sym::Pow2(_) => {
                    write!(f, "{e}^2")
                }
                other => write!(f, "({other})^2"),
            },
            Sym::Sum(body) => write!(f, "sum_{{l=1..p}} {body}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms_evaluate_exactly() {
        // Total merges of the quad-tree: Σ (s/2^l)² = (s² − 1)/3.
        let merges = Sym::merges_at_level().sum_over_levels();
        for side in [2u32, 4, 8, 16, 32] {
            let n = i64::from(side) * i64::from(side);
            assert_eq!(merges.eval(side), (n - 1) / 3, "side {side}");
        }
        // Σ 2·2^(l−1) = 2(s − 1): the §4.1 O(√N) critical path in steps.
        let steps = (Sym::Int(2) * Sym::quadrant_side()).sum_over_levels();
        for side in [2u32, 4, 8, 64] {
            assert_eq!(steps.eval(side), 2 * (i64::from(side) - 1));
        }
    }

    #[test]
    fn rendering_is_readable_math() {
        let merges = Sym::merges_at_level().sum_over_levels();
        assert_eq!(merges.to_string(), "sum_{l=1..p} (s/2^l)^2");
        let q = Sym::quadrant_side();
        assert_eq!(q.to_string(), "2^(l - 1)");
        let mixed = Sym::Int(3) * (Sym::Side + Sym::Int(1));
        assert_eq!(mixed.to_string(), "3*(s + 1)");
    }

    #[test]
    fn depth_and_division_semantics() {
        assert_eq!(Sym::Depth.eval(16), 4);
        let e = Sym::Side / Sym::Int(4);
        assert_eq!(e.eval(8), 2);
        assert_eq!((Sym::Side - Sym::Int(1)).eval(4), 3);
    }

    #[test]
    #[should_panic(expected = "Level outside a Sum")]
    fn unbound_level_panics() {
        Sym::Level.eval(4);
    }
}
