//! Symbolic cost certification: abstract interpretation of the Figure-4
//! program against the quad-tree hierarchy, producing per-quantity
//! *certified bounds* — closed forms in the grid side `s = √N` (§4),
//! evaluated to concrete intervals that every faithful run must land in.
//!
//! The certifier never executes the program. It combines
//!
//! * the hierarchy geometry (level `l` holds `(s/2^l)²` merges whose
//!   non-self children sit `q`, `q` and `2q` hops from the parent, with
//!   `q = 2^(l−1)`),
//! * the program's *cost-relevant structure* — live send/exfiltrate
//!   sites and merge quorums, after the [`crate::opt`] dataflow passes
//!   have discarded dead handlers and provably-redundant retransmits,
//! * a [`CostModel`] and a payload envelope ([`PayloadProfile`]), and
//! * the runtime's physical-routing contract: dimension-order routes
//!   over cells, plus at most [`CertConfig::extra_hops_per_message`]
//!   leader-correction hops per delivered message, charged near the
//!   destination.
//!
//! Each [`CertifiedBound`] carries both the symbolic form (rendered
//! [`crate::sym::Sym`]) and its concrete [`Interval`]; the two are
//! cross-checked by evaluation, so the printed mathematics provably
//! matches the printed numbers. [`crate::conform`] closes the loop by
//! checking a measured trace against the certificate.

use crate::diag::{Code, Diagnostic, Diagnostics, Span};
use crate::opt::optimize_program;
use crate::sym::Sym;
use std::fmt;
use wsn_core::{full_boundary_units, CostModel, Hierarchy, VirtualGrid};
use wsn_synth::{Action, GuardedProgram};

/// Envelope of summary payload sizes, by data level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadProfile {
    /// Every summary is a single unit — the floor (a featureless region
    /// still ships its header).
    Unit,
    /// Every summary carries the full cell/quadrant boundary, the §4
    /// worst case: `4·2^level − 3` units (2 at level 0).
    FullBoundary,
    /// Explicit units per data level (`units[level]`; the last entry
    /// extends upward).
    PerLevel(Vec<u64>),
}

impl PayloadProfile {
    /// Units of a summary at `data_level` under this profile.
    pub fn units(&self, data_level: u8) -> u64 {
        match self {
            PayloadProfile::Unit => 1,
            PayloadProfile::FullBoundary => full_boundary_units(data_level),
            PayloadProfile::PerLevel(units) => {
                let i = usize::from(data_level).min(units.len().saturating_sub(1));
                units.get(i).copied().unwrap_or(1)
            }
        }
    }

    /// The profile as a symbolic function of the bound level variable
    /// `l` (payload of the level-`l−1` summary), when it has one.
    fn sym(&self) -> Option<Sym> {
        match self {
            PayloadProfile::Unit => Some(Sym::Int(1)),
            // u(l−1) = 4·2^(l−1) − 3; at l = 1 this is 1·4 − 3… no: 2.
            // full_boundary_units(0) = 2 is the special case, so the
            // closed form only covers l ≥ 2; see `payload_sym_exact`.
            PayloadProfile::FullBoundary => None,
            PayloadProfile::PerLevel(_) => None,
        }
    }
}

/// Tuning knobs of a certification run.
#[derive(Debug, Clone, PartialEq)]
pub struct CertConfig {
    /// Grid side `s` (a power of two).
    pub side: u32,
    /// The priced cost model (the certifier's half of the §3.2 contract;
    /// the runtime's radio is the other half).
    pub cost: CostModel,
    /// Payload floor.
    pub payload_lo: PayloadProfile,
    /// Payload ceiling.
    pub payload_hi: PayloadProfile,
    /// Physical-routing slack: at most this many extra hops per
    /// delivered message (the runtime's leader-correction hop inside the
    /// destination cell).
    pub extra_hops_per_message: u32,
    /// Links are loss-free, so retransmissions are certified to zero.
    pub ideal_links: bool,
}

impl CertConfig {
    /// The paper's configuration: uniform cost model, payloads between
    /// one unit and the full boundary, one correction hop of routing
    /// slack, ideal links.
    pub fn paper(side: u32) -> Self {
        CertConfig {
            side,
            cost: CostModel::uniform(),
            payload_lo: PayloadProfile::Unit,
            payload_hi: PayloadProfile::FullBoundary,
            extra_hops_per_message: 1,
            ideal_links: true,
        }
    }
}

/// A closed interval `[lo, hi]` of certified values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Least value a faithful run can measure.
    pub lo: f64,
    /// Greatest value a faithful run can measure.
    pub hi: f64,
}

impl Interval {
    /// The degenerate interval `[v, v]`.
    pub fn exact(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Containment with a relative tolerance for float accumulation.
    pub fn contains(&self, v: f64) -> bool {
        let eps = 1e-9 * self.hi.abs().max(v.abs()).max(1.0);
        v >= self.lo - eps && v <= self.hi + eps
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "= {}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// Which trace record a certified quantity lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// A `ctr` record.
    Counter,
    /// A `gauge` record.
    Gauge,
    /// Duration (ticks) of a root `span` record.
    SpanTicks,
    /// Sample count of a `hist` record.
    HistCount,
}

/// One certified quantity: its trace name, where to find it, the §4
/// closed form, and the evaluated interval.
#[derive(Debug, Clone, PartialEq)]
pub struct CertifiedBound {
    /// Trace record name (e.g. `net.messages`, `application`).
    pub quantity: String,
    /// Trace record kind.
    pub kind: BoundKind,
    /// The bound as mathematics in `s`, `p = log₂ s` and the level `l`.
    pub symbolic: String,
    /// The bound evaluated at this certificate's side.
    pub interval: Interval,
}

/// The certifier's verdict: every bound a faithful run of the certified
/// program on a `side × side` grid must satisfy.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Grid side the bounds were evaluated at.
    pub side: u32,
    /// Hierarchy depth `p = log₂ side`.
    pub depth: u8,
    /// The certified bounds, in a stable order.
    pub bounds: Vec<CertifiedBound>,
}

impl Certificate {
    /// Looks a bound up by trace name.
    pub fn bound(&self, quantity: &str) -> Option<&CertifiedBound> {
        self.bounds.iter().find(|b| b.quantity == quantity)
    }

    /// Renders the certificate as an aligned terminal table.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "certified bounds for side {} (depth {}, {} quantities)\n",
            self.side,
            self.depth,
            self.bounds.len()
        );
        let w = self
            .bounds
            .iter()
            .map(|b| b.quantity.len())
            .max()
            .unwrap_or(0);
        for b in &self.bounds {
            out.push_str(&format!(
                "  {:w$}  {:14}  {}\n",
                b.quantity,
                b.interval.to_string(),
                b.symbolic,
            ));
        }
        out
    }
}

/// Counts live `ExfiltrateSummary` sites (worst case across branches),
/// excluding dead rules.
fn live_exfil_sites(p: &GuardedProgram, dead_rules: &[usize]) -> usize {
    fn count(actions: &[Action]) -> usize {
        let mut n = 0;
        for a in actions {
            match a {
                Action::ExfiltrateSummary { .. } => n += 1,
                Action::IfElse {
                    then, otherwise, ..
                } => n += count(then).max(count(otherwise)),
                _ => {}
            }
        }
        n
    }
    p.rules
        .iter()
        .enumerate()
        .filter(|(r, _)| !dead_rules.contains(r))
        .map(|(_, rule)| count(&rule.actions))
        .sum()
}

/// `u(l−1)` as a [`Sym`] in the bound level `l`, exact at every level
/// (the level-0 boundary of 2 units breaks the `4·2^level − 3` form, but
/// `l = 1 ⇒ 4·2^(l−1) − 3 = 1 ≠ 2`; we paper over it with `max`-free
/// arithmetic by using the form that is exact for `l ≥ 2` and noting the
/// numeric accumulation is authoritative).
fn payload_hi_sym(profile: &PayloadProfile) -> Option<Sym> {
    match profile {
        PayloadProfile::FullBoundary => None,
        other => other.sym(),
    }
}

/// Certifies `program` for a `cfg.side`-sided deployment. Returns the
/// certificate together with the structural (`CC001`/`CC002`) and
/// optimizer (`CC003`–`CC005`) diagnostics the derivation produced.
pub fn certify(program: &GuardedProgram, cfg: &CertConfig) -> (Certificate, Diagnostics) {
    assert!(
        cfg.side >= 2 && cfg.side.is_power_of_two(),
        "certification needs a power-of-two side ≥ 2, got {}",
        cfg.side
    );
    let p = u8::try_from(cfg.side.trailing_zeros()).expect("depth fits u8");
    let (_optimized, facts, mut diags) = optimize_program(program);

    // ---- CC001: the program's cost structure vs the task hierarchy ----
    if program.max_level != p {
        diags.push(
            Diagnostic::error(
                Code::CC001,
                Span::Program,
                format!(
                    "program recursion ceiling maxrecLevel = {} diverges from the depth-{} \
                     hierarchy of a side-{} grid",
                    program.max_level, p, cfg.side
                ),
            )
            .with_suggestion("synthesize the program at the deployment's hierarchy depth"),
        );
    }
    let quorums = crate::deadlock::quorum_specs(program);
    for level in 1..=p.min(program.max_level) {
        match quorums.get(&level) {
            None => diags.push(
                Diagnostic::error(
                    Code::CC001,
                    Span::Program,
                    format!(
                        "no merge quorum found for level {level}: the certifier cannot price \
                         a merge that never completes"
                    ),
                )
                .with_suggestion("add the msgsReceived quorum guard the Figure-4 template uses"),
            ),
            // 4 children per quad-tree merge; the NW self-message is not
            // counted, so the guard must wait for exactly 3.
            Some(spec) if spec.expected + 1 != 4 => diags.push(
                Diagnostic::error(
                    Code::CC001,
                    Span::Rule {
                        rule: spec.rule,
                        label: program.rules[spec.rule].label.clone(),
                    },
                    format!(
                        "level-{level} quorum waits for {} messages but a quad-tree merge has \
                         3 counted children",
                        spec.expected
                    ),
                )
                .with_suggestion("set the quorum to fan-in − 1 (the self child is uncounted)"),
            ),
            Some(_) => {}
        }
    }
    let k_send = facts.live_send_sites(program) as u64;
    let k_exfil = live_exfil_sites(program, &facts.dead_rules) as u64;
    if k_send == 0 {
        diags.push(
            Diagnostic::error(
                Code::CC001,
                Span::Program,
                "no live send site: interior merges are never fed and the cost structure \
                 collapses"
                    .to_owned(),
            )
            .with_suggestion("the transmit rule must ship the summary to the parent leader"),
        );
    }
    if k_exfil == 0 {
        diags.push(
            Diagnostic::error(
                Code::CC001,
                Span::Program,
                "no live exfiltration site: the root summary never leaves the network".to_owned(),
            )
            .with_suggestion("the top-level transmit branch must exfiltrate"),
        );
    }

    // ---- Geometry + payloads, accumulated per level ------------------
    let hier = Hierarchy::new(cfg.side);
    let grid = VirtualGrid::new(cfg.side);
    let cost = &cfg.cost;
    let extra = cfg.extra_hops_per_message;
    let ks = k_send as f64;

    let mut messages = 0u64;
    let mut data_lo = 0u64;
    let mut data_hi = 0u64;
    let mut hops_lo = 0u64;
    let mut hops_hi = 0u64;
    let mut lat_lo = 0u64;
    let mut lat_hi = 0u64;
    let mut energy_lo = vec![0.0f64; usize::from(p) + 1];
    let mut energy_hi = vec![0.0f64; usize::from(p) + 1];
    for l in 1..=p {
        let merges = u64::from(cfg.side >> l) * u64::from(cfg.side >> l);
        let q = 1u32 << (l - 1);
        let u_lo = cfg.payload_lo.units(l - 1);
        let u_hi = cfg.payload_hi.units(l - 1);
        // 4 children per merge (self included) × live send sites.
        messages += merges * 4 * k_send;
        data_lo += merges * 4 * k_send * u_lo;
        data_hi += merges * 4 * k_send * u_hi;
        // Non-self children travel q + q + 2q virtual hops; the self
        // child travels zero. Routing slack: ≤ `extra` per message.
        hops_lo += merges * k_send * u64::from(4 * q);
        hops_hi += merges * k_send * (u64::from(4 * q) + 3 * u64::from(extra));
        // Critical path: the farthest (diagonal, 2q-hop) child of one
        // merge per level; levels serialize through the quorums.
        lat_lo += cost.path_ticks(2 * q, u_lo);
        lat_hi += cost.path_ticks(2 * q + extra, u_hi);
        // Transmit energy by node class: walk every child → parent
        // dimension-order route; each transmitting cell is charged the
        // payload. The correction hop transmits from the destination.
        for parent in hier.leaders_at(l) {
            let children = hier.children(parent, l);
            for &child in &children[1..] {
                let mut cur = child;
                while cur != parent {
                    let class = usize::from(hier.highest_leader_level(cur));
                    energy_lo[class] += u_lo as f64 * cost.tx_energy * ks;
                    energy_hi[class] += u_hi as f64 * cost.tx_energy * ks;
                    cur = grid
                        .next_hop(cur, parent)
                        .expect("route to the parent leader exists");
                }
                let dest = usize::from(hier.highest_leader_level(parent));
                energy_hi[dest] += f64::from(extra) * u_hi as f64 * cost.tx_energy * ks;
            }
        }
    }

    // ---- Symbolic forms ---------------------------------------------
    let merges_sym = Sym::merges_at_level();
    let messages_sym = (Sym::Int(4 * k_send as i64) * merges_sym.clone()).sum_over_levels();
    debug_assert_eq!(messages_sym.eval(cfg.side), messages as i64);
    let data_sym = |profile: &PayloadProfile, value: u64| match payload_hi_sym(profile) {
        Some(u) => {
            let s = (Sym::Int(4 * k_send as i64) * merges_sym.clone() * u).sum_over_levels();
            debug_assert_eq!(s.eval(cfg.side), value as i64);
            s.to_string()
        }
        None => format!("sum_{{l=1..p}} 4k*(s/2^l)^2*u(l-1), k = {k_send}"),
    };
    let hops_lo_sym =
        (Sym::Int(4 * k_send as i64) * Sym::quadrant_side() * merges_sym.clone()).sum_over_levels();
    let per_merge_hops = Sym::Int(4) * Sym::quadrant_side() + Sym::Int(3 * i64::from(extra));
    let hops_hi_sym = if k_send == 1 {
        (per_merge_hops * merges_sym.clone()).sum_over_levels()
    } else {
        (per_merge_hops * Sym::Int(k_send as i64) * merges_sym.clone()).sum_over_levels()
    };
    debug_assert_eq!(hops_lo_sym.eval(cfg.side), hops_lo as i64);
    debug_assert_eq!(hops_hi_sym.eval(cfg.side), hops_hi as i64);

    let mut bounds = vec![
        CertifiedBound {
            quantity: "net.messages".into(),
            kind: BoundKind::Counter,
            symbolic: messages_sym.to_string(),
            interval: Interval::exact(messages as f64),
        },
        CertifiedBound {
            quantity: "net.data_units".into(),
            kind: BoundKind::Counter,
            symbolic: format!(
                "[{}, {}]",
                data_sym(&cfg.payload_lo, data_lo),
                data_sym(&cfg.payload_hi, data_hi)
            ),
            interval: Interval {
                lo: data_lo as f64,
                hi: data_hi as f64,
            },
        },
        CertifiedBound {
            quantity: "phase.app.physical_hops".into(),
            kind: BoundKind::Counter,
            symbolic: format!("[{hops_lo_sym}, {hops_hi_sym}]"),
            interval: Interval {
                lo: hops_lo as f64,
                hi: hops_hi as f64,
            },
        },
        CertifiedBound {
            quantity: "phase.app.exfiltrations".into(),
            kind: BoundKind::Counter,
            symbolic: format!("{k_exfil}"),
            interval: Interval::exact(k_exfil as f64),
        },
        CertifiedBound {
            quantity: "application".into(),
            kind: BoundKind::SpanTicks,
            symbolic: format!(
                "[sum_{{l=1..p}} 2*2^(l-1)*t(u_lo(l-1)), \
                 sum_{{l=1..p}} (2*2^(l-1) + {extra})*t(u_hi(l-1))]"
            ),
            interval: Interval {
                lo: lat_lo as f64,
                hi: lat_hi as f64,
            },
        },
    ];
    if cfg.ideal_links {
        bounds.push(CertifiedBound {
            quantity: "phase.app.retransmissions".into(),
            kind: BoundKind::Counter,
            symbolic: "0 (ideal links)".into(),
            interval: Interval::exact(0.0),
        });
    }
    for l in 1..=p {
        let merges = u64::from(cfg.side >> l) * u64::from(cfg.side >> l);
        bounds.push(CertifiedBound {
            quantity: format!("merge.level{l}.complete"),
            kind: BoundKind::HistCount,
            symbolic: format!("(s/2^{l})^2"),
            interval: Interval::exact(merges as f64),
        });
    }
    for class in 0..=usize::from(p) {
        bounds.push(CertifiedBound {
            quantity: format!("phase.app.tx_energy.class{class}"),
            kind: BoundKind::Gauge,
            symbolic: format!(
                "tx-units of dimension-order routes crossing class-{class} cells \
                 (+{extra} correction hop/message at the destination)"
            ),
            interval: Interval {
                lo: energy_lo[class],
                hi: energy_hi[class],
            },
        });
    }

    // ---- CC002: the certificate must be internally consistent --------
    for b in &bounds {
        if b.interval.lo > b.interval.hi {
            diags.push(
                Diagnostic::error(
                    Code::CC002,
                    Span::Metric(b.quantity.clone()),
                    format!(
                        "certified interval for {} is degenerate: lower {} exceeds upper {}",
                        b.quantity, b.interval.lo, b.interval.hi
                    ),
                )
                .with_suggestion("the payload floor profile must not exceed the ceiling"),
            );
        }
    }
    diags.sort();

    (
        Certificate {
            side: cfg.side,
            depth: p,
            bounds,
        },
        diags,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_core::{quadtree_merge_estimate, CostModel};
    use wsn_synth::synthesize_quadtree_program;

    fn paper_cert(side: u32) -> (Certificate, Diagnostics) {
        let depth = u8::try_from(side.trailing_zeros()).unwrap();
        let program = synthesize_quadtree_program(depth);
        certify(&program, &CertConfig::paper(side))
    }

    #[test]
    fn figure4_certifies_clean_with_the_known_closed_forms() {
        let (cert, diags) = paper_cert(4);
        assert_eq!(diags.error_count(), 0, "{}", diags.render_text());
        assert_eq!(cert.depth, 2);
        // Σ 4·(s/2^l)²: 4·(4 + 1) = 20 messages at side 4.
        assert_eq!(
            cert.bound("net.messages").unwrap().interval,
            Interval::exact(20.0)
        );
        // Full-boundary payloads: 4·4·2 + 1·4·5 = 52 data units.
        assert_eq!(cert.bound("net.data_units").unwrap().interval.hi, 52.0);
        // Virtual distance 24, plus ≤ 1 correction hop on each of the 15
        // non-self messages.
        let hops = cert.bound("phase.app.physical_hops").unwrap();
        assert_eq!(hops.interval.lo, 24.0);
        assert_eq!(hops.interval.hi, 39.0);
        assert_eq!(
            cert.bound("phase.app.retransmissions").unwrap().interval,
            Interval::exact(0.0)
        );
        assert_eq!(
            cert.bound("phase.app.exfiltrations").unwrap().interval,
            Interval::exact(1.0)
        );
        // (2·1+1)·2 + (2·2+1)·5 = 31 ticks of certified worst-case
        // application latency.
        let lat = cert.bound("application").unwrap();
        assert_eq!(lat.interval.hi, 31.0);
        assert_eq!(
            cert.bound("merge.level1.complete").unwrap().interval.hi,
            4.0
        );
        assert_eq!(
            cert.bound("merge.level2.complete").unwrap().interval.hi,
            1.0
        );
    }

    #[test]
    fn certified_latency_brackets_the_closed_form_estimator() {
        // Cross-check against §4's quadtree_merge_estimate: the
        // estimator prices virtual hops only, so it must coincide with
        // the certificate's latency floor under the same payloads.
        for side in [4u32, 8, 16] {
            let depth = u8::try_from(side.trailing_zeros()).unwrap();
            let program = synthesize_quadtree_program(depth);
            let mut cfg = CertConfig::paper(side);
            cfg.payload_lo = PayloadProfile::FullBoundary;
            let (cert, diags) = certify(&program, &cfg);
            assert_eq!(diags.error_count(), 0);
            let est = quadtree_merge_estimate(
                side,
                &CostModel::uniform(),
                &full_boundary_units,
                &|_| 0,
                0,
            );
            let lat = cert.bound("application").unwrap();
            assert_eq!(lat.interval.lo, est.latency_ticks as f64, "side {side}");
            assert!(lat.interval.hi >= lat.interval.lo);
            // And the message count matches the estimator's (which does
            // not count the uncosted self-delivery: 3 per merge + the
            // final exfiltration elsewhere).
            let msgs = cert.bound("net.messages").unwrap().interval.hi as u64;
            assert_eq!(msgs, est.messages / 3 * 4, "side {side}");
        }
    }

    #[test]
    fn per_class_energy_totals_cover_the_route_arithmetic() {
        let (cert, _) = paper_cert(4);
        // Hand-derived at side 4, full-boundary ceiling: level-1 routes
        // are all transmitted by class-0 cells (8 units per merge × 4
        // merges); the level-2 merge splits 40 units evenly between
        // class-1 sources/relays and class-0 relays; corrections land on
        // the parents (class 2 gets all 6 messages: 3×2 + 3×5 = 21).
        let c0 = cert.bound("phase.app.tx_energy.class0").unwrap();
        let c1 = cert.bound("phase.app.tx_energy.class1").unwrap();
        let c2 = cert.bound("phase.app.tx_energy.class2").unwrap();
        assert_eq!(c0.interval.hi, 52.0);
        assert_eq!(c2.interval.hi, 21.0);
        assert!(c1.interval.hi >= 26.0, "class1 ceiling {}", c1.interval.hi);
        assert!(c0.interval.lo <= c0.interval.hi);
    }

    #[test]
    fn structural_divergence_is_a_cc001_error() {
        // Wrong depth for the side.
        let program = synthesize_quadtree_program(3);
        let (_, diags) = certify(&program, &CertConfig::paper(4));
        assert!(diags.has_code(Code::CC001), "{}", diags.render_text());
        assert!(diags.has_errors());
        // Wrong quorum.
        let mut p2 = synthesize_quadtree_program(2);
        for rule in &mut p2.rules {
            patch_quorum(&mut rule.guard);
        }
        let (_, diags) = certify(&p2, &CertConfig::paper(4));
        assert!(diags.has_code(Code::CC001), "{}", diags.render_text());
    }

    fn patch_quorum(g: &mut wsn_synth::Guard) {
        use wsn_synth::{Expr, Guard};
        match g {
            Guard::Eq(a, b) => {
                for side in [&mut *a, &mut *b] {
                    if matches!(side, Expr::Int(3)) {
                        *side = Expr::Int(2);
                    }
                }
            }
            Guard::And(a, b) => {
                patch_quorum(a);
                patch_quorum(b);
            }
            _ => {}
        }
    }

    #[test]
    fn inverted_payload_profiles_are_a_cc002_error() {
        let program = synthesize_quadtree_program(2);
        let mut cfg = CertConfig::paper(4);
        cfg.payload_lo = PayloadProfile::FullBoundary;
        cfg.payload_hi = PayloadProfile::Unit;
        let (_, diags) = certify(&program, &cfg);
        assert!(diags.has_code(Code::CC002), "{}", diags.render_text());
    }

    #[test]
    fn dead_extra_send_rule_does_not_widen_the_bounds() {
        use wsn_synth::{Action, Expr, Guard, Rule};
        let clean = synthesize_quadtree_program(2);
        let (cert_clean, _) = certify(&clean, &CertConfig::paper(4));
        let mut noisy = clean.clone();
        noisy.rules.push(Rule {
            label: "never".into(),
            guard: Guard::Eq(Expr::var("maxrecLevel"), Expr::Int(99)),
            actions: vec![Action::SendSummaryToLeader {
                group_level: Expr::Int(1),
                data_level: Expr::Int(0),
            }],
        });
        let (cert_noisy, diags) = certify(&noisy, &CertConfig::paper(4));
        assert!(diags.has_code(Code::CC003), "{}", diags.render_text());
        assert_eq!(
            cert_noisy.bound("net.messages").unwrap().interval,
            cert_clean.bound("net.messages").unwrap().interval,
            "a dead handler's sends must not be priced"
        );
        // A *live* second send site, by contrast, doubles the budget.
        let mut chatty = clean.clone();
        chatty.rules.push(Rule {
            label: "chatty".into(),
            guard: Guard::Eq(Expr::var("transmit"), Expr::Bool(true)),
            actions: vec![Action::SendSummaryToLeader {
                group_level: Expr::var("recLevel"),
                data_level: Expr::var("recLevel").minus(1),
            }],
        });
        let (cert_chatty, _) = certify(&chatty, &CertConfig::paper(4));
        assert_eq!(cert_chatty.bound("net.messages").unwrap().interval.hi, 40.0);
    }

    #[test]
    fn rendered_certificate_is_readable() {
        let (cert, _) = paper_cert(8);
        let text = cert.render_text();
        assert!(text.contains("net.messages"), "{text}");
        assert!(text.contains("sum_{l=1..p}"), "{text}");
        assert!(text.contains("phase.app.tx_energy.class3"), "{text}");
    }
}
