//! Pass 6a — per-role handler footprints in region space (`SI001`).
//!
//! The synthesized programs are location-oblivious: the only property of
//! its cell a program can observe is the *role* — the highest level at
//! which the cell leads a quad-tree group — because that is what decides
//! which summary tags the middleware ever delivers to it (a role-`r` cell
//! receives child summaries tagged `1..=r`, and nothing else). So instead
//! of abstract-interpreting one copy of the handler per cell, this pass
//! re-runs the Figure-4 exploration machinery once per role with message
//! deliveries restricted to that role's tag set, and reads the exact
//! region-space footprint off the recorded index intervals:
//!
//! * **writes** — `group_level` intervals of fired sends (the message
//!   lands in the level-`g` leader's quorum slot `msgsReceived[g]`);
//! * **reads** — `data_level` intervals (the local summary slot a send
//!   serializes);
//! * **exfils** — `ExfiltrateSummary` level intervals.
//!
//! `SI001` fires when any footprint component escapes the region space
//! `[0, p]` of the deployment — a handler that addresses a region outside
//! the hierarchy cannot be assigned to any shard.

use crate::diag::{Code, Diagnostic, Diagnostics, Span};
use crate::reach::{explore_with_levels, IndexKind, ReachConfig, SiteKey};
use std::collections::BTreeMap;
use wsn_core::{Hierarchy, RoleFootprint, SiteFootprint};
use wsn_synth::GuardedProgram;

/// Computes the per-role footprints of `program` on a `side × side`
/// deployment: one [`RoleFootprint`] per role `0..=p`, each from an
/// exhaustive exploration restricted to that role's delivery tags.
/// Sites that never fire at a role are absent from its footprint.
pub fn role_footprints(
    program: &GuardedProgram,
    side: u32,
    config: ReachConfig,
) -> Vec<RoleFootprint> {
    let hier = Hierarchy::new(side);
    (0..=hier.max_level())
        .map(|role| {
            let levels: Vec<i64> = (1..=i64::from(role)).collect();
            let report = explore_with_levels(program, config, &levels);
            let mut fp = RoleFootprint {
                role,
                writes: Vec::new(),
                reads: Vec::new(),
                exfils: Vec::new(),
            };
            for (site, &(lo, hi)) in &report.intervals {
                let entry = SiteFootprint {
                    rule: site.rule,
                    path: site.path.clone(),
                    lo,
                    hi,
                };
                match site.kind {
                    IndexKind::GroupLevel => fp.writes.push(entry),
                    IndexKind::DataLevel => fp.reads.push(entry),
                    IndexKind::ExfiltrateLevel => fp.exfils.push(entry),
                    IndexKind::MsgsReceived => {}
                }
            }
            fp
        })
        .collect()
}

/// Runs the footprint pass: computes [`role_footprints`] and reports
/// every site whose footprint escapes the region space `[0, p]` as
/// `SI001`, one diagnostic per site with the interval merged across
/// roles. Callers must run [`crate::wellformed::check_program`] first
/// (evaluation over unbound names is meaningless).
pub fn check_footprints(
    program: &GuardedProgram,
    side: u32,
    config: ReachConfig,
) -> (Vec<RoleFootprint>, Diagnostics) {
    let footprints = role_footprints(program, side, config);
    let p = i64::from(Hierarchy::new(side).max_level());
    let mut diags = Diagnostics::new();

    // Merge each site's interval across roles so one escaping site yields
    // one finding, not one per role.
    let mut merged: BTreeMap<(SiteKey, &'static str), (i64, i64)> = BTreeMap::new();
    for fp in &footprints {
        for (list, kind, what) in [
            (&fp.writes, IndexKind::GroupLevel, "write (group_level)"),
            (&fp.reads, IndexKind::DataLevel, "read (data_level)"),
            (&fp.exfils, IndexKind::ExfiltrateLevel, "exfiltration level"),
        ] {
            for site in list {
                let key = SiteKey {
                    rule: site.rule,
                    path: site.path.clone(),
                    kind,
                };
                let entry = merged.entry((key, what)).or_insert((site.lo, site.hi));
                entry.0 = entry.0.min(site.lo);
                entry.1 = entry.1.max(site.hi);
            }
        }
    }
    for ((site, what), (lo, hi)) in merged {
        if lo < 0 || hi > p {
            diags.push(
                Diagnostic::error(
                    Code::SI001,
                    Span::Action {
                        rule: site.rule,
                        path: site.path,
                    },
                    format!(
                        "handler footprint escapes the region space: {what} evaluates to \
                         [{lo}, {hi}] across roles, outside the deployment's levels [0, {p}]"
                    ),
                )
                .with_suggestion(
                    "no shard can own a region outside the hierarchy; fix the level arithmetic",
                ),
            );
        }
    }
    diags.sort();
    (footprints, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_synth::{synthesize_gather_program, synthesize_quadtree_program};

    #[test]
    fn figure4_roles_have_nested_footprints() {
        // Role r explores tags 1..=r, so each role's behaviors are a
        // subset of the next role's; footprints must stay within the
        // paper's [1, r+1] send envelope.
        let p = synthesize_quadtree_program(2);
        let fps = role_footprints(&p, 4, ReachConfig::default());
        assert_eq!(fps.len(), 3);
        for fp in &fps {
            for w in &fp.writes {
                assert!(w.lo >= 1, "role {} writes {:?}", fp.role, w);
                assert!(
                    w.hi <= i64::from(fp.role) + 1,
                    "role {} writes {:?}",
                    fp.role,
                    w
                );
            }
        }
        // A follower (role 0) still boots and sends its level-1 summary.
        assert!(!fps[0].writes.is_empty());
        // Only the root role can exfiltrate.
        assert!(fps[0].exfils.is_empty() && fps[1].exfils.is_empty());
        assert!(!fps[2].exfils.is_empty());
    }

    #[test]
    fn figure4_and_gather_footprints_are_clean() {
        for program in [
            synthesize_quadtree_program(2),
            synthesize_gather_program(2, 4),
        ] {
            let (_, d) = check_footprints(&program, 4, ReachConfig::default());
            assert_eq!(d.error_count(), 0, "{}: {}", program.name, d.render_text());
        }
    }

    #[test]
    fn escaping_send_level_is_si001() {
        let mut p = synthesize_quadtree_program(2);
        p.rules[0]
            .actions
            .push(wsn_synth::Action::SendSummaryToLeader {
                group_level: wsn_synth::Expr::var("maxrecLevel").plus(2),
                data_level: wsn_synth::Expr::Int(0),
            });
        let (_, d) = check_footprints(&p, 4, ReachConfig::default());
        assert!(d.has_code(Code::SI001), "{}", d.render_text());
        assert!(d.has_errors());
    }
}
