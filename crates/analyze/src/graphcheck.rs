//! Pass 3 — task-graph and mapping structure.
//!
//! Structural lints on the architecture-independent application model and
//! on a candidate task-to-node mapping: cycles (with an explicit witness
//! path, not just a boolean), orphan tasks, hierarchy-level monotonicity
//! along data-flow edges, and the paper's §4.1 design-time constraints
//! (coverage and spatial correlation) swept exhaustively via
//! [`wsn_synth::coverage_violations`] /
//! [`wsn_synth::spatial_correlation_violations`].

use crate::diag::{Code, Diagnostic, Diagnostics, Span};
use wsn_synth::{
    coverage_violations, spatial_correlation_violations, ConstraintViolation, Mapping, QuadTree,
    TaskGraph, TaskId,
};

/// Runs the structural lints on a task graph.
pub fn check_graph(graph: &TaskGraph) -> Diagnostics {
    let mut diags = Diagnostics::new();

    if let Some(cycle) = find_cycle(graph) {
        let witness = cycle
            .iter()
            .chain(cycle.first())
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" -> ");
        let (&from, &to) = (cycle.last().unwrap(), cycle.first().unwrap());
        diags.push(
            Diagnostic::error(
                Code::GM001,
                Span::Edge { from, to },
                format!("task graph has a cycle: {witness}; no schedule can order one round"),
            )
            .with_suggestion(format!(
                "break the cycle by removing the edge {from} -> {to}"
            )),
        );
    }

    if graph.task_count() > 1 {
        for task in graph.tasks() {
            if graph.producers(task.id).is_empty() && graph.consumers(task.id).is_empty() {
                diags.push(
                    Diagnostic::warning(
                        Code::GM002,
                        Span::Task(task.id),
                        format!(
                            "task {} exchanges no data with the rest of the graph; it will be mapped and charged but contributes nothing",
                            task.id
                        ),
                    )
                    .with_suggestion("connect the task or drop it from the graph"),
                );
            }
        }
    }

    // Leveled graphs must aggregate upward. A graph with every level at 0
    // is free-form (the annotation is unused) and exempt.
    if graph.tasks().iter().any(|t| t.level > 0) {
        for e in graph.edges() {
            let (lf, lt) = (graph.task(e.from).level, graph.task(e.to).level);
            if lt <= lf {
                diags.push(
                    Diagnostic::warning(
                        Code::GM003,
                        Span::Edge {
                            from: e.from,
                            to: e.to,
                        },
                        format!(
                            "edge {} -> {} goes from level {lf} to level {lt}; aggregation edges must strictly increase the hierarchy level",
                            e.from, e.to
                        ),
                    )
                    .with_suggestion("fix the task levels or reverse the edge"),
                );
            }
        }
    }

    diags
}

/// Runs the §4.1 constraint sweep on a mapping over `qt`'s grid.
pub fn check_mapping(qt: &QuadTree, mapping: &Mapping) -> Diagnostics {
    let mut diags = Diagnostics::new();
    for v in coverage_violations(qt, mapping) {
        diags.push(constraint_diag(Code::GM004, &v));
    }
    for v in spatial_correlation_violations(qt, mapping) {
        diags.push(constraint_diag(Code::GM005, &v));
    }
    diags
}

fn constraint_diag(code: Code, v: &ConstraintViolation) -> Diagnostic {
    let (span, message) = match v {
        ConstraintViolation::DuplicateLeafAssignment { node } => (
            Span::Node(*node),
            format!(
                "two sampling tasks share node ({}, {}); coverage requires a distinct node per leaf",
                node.col, node.row
            ),
        ),
        ConstraintViolation::CoverageCount { leaves, nodes } => (
            Span::Program,
            format!("{leaves} sampling task(s) for {nodes} virtual node(s); coverage requires a bijection"),
        ),
        ConstraintViolation::OutOfGrid { task } => (
            Span::Task(*task),
            format!("task {task} is mapped outside the virtual topology"),
        ),
        ConstraintViolation::NonContiguousExtent { task } => (
            Span::Task(*task),
            format!(
                "the leaves under task {task} do not tile one contiguous square extent; merged boundaries would mix disjoint regions"
            ),
        ),
    };
    Diagnostic::error(code, span, message)
        .with_suggestion("re-run the mapper or repair the assignment before synthesis")
}

/// Finds one cycle as a witness path `[t0, t1, …, tk]` with an edge
/// `tk -> t0` closing it; `None` when the graph is a DAG.
pub fn find_cycle(graph: &TaskGraph) -> Option<Vec<TaskId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = graph.task_count();
    let mut color = vec![Color::White; n];
    let mut stack: Vec<TaskId> = Vec::new();

    // Iterative DFS carrying (task, next-consumer-index).
    for root in 0..n {
        if color[root] != Color::White {
            continue;
        }
        let mut frames: Vec<(TaskId, usize)> = vec![(root, 0)];
        color[root] = Color::Gray;
        stack.push(root);
        while let Some(&mut (t, ref mut next)) = frames.last_mut() {
            if let Some(&c) = graph.consumers(t).get(*next) {
                *next += 1;
                match color[c] {
                    Color::White => {
                        color[c] = Color::Gray;
                        stack.push(c);
                        frames.push((c, 0));
                    }
                    Color::Gray => {
                        // Back edge t -> c: the cycle is the stack from c.
                        let start = stack.iter().position(|&x| x == c).unwrap();
                        return Some(stack[start..].to_vec());
                    }
                    Color::Black => {}
                }
            } else {
                color[t] = Color::Black;
                stack.pop();
                frames.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_core::GridCoord;
    use wsn_synth::{quadtree_task_graph, Mapper, QuadrantMapper, TaskKind};

    fn qt(side: u32) -> QuadTree {
        quadtree_task_graph(side, &|l| u64::from(l) + 1, &|l| u64::from(l))
    }

    #[test]
    fn quadtree_graph_and_paper_mapping_are_clean() {
        let qt = qt(4);
        assert!(check_graph(&qt.graph).is_empty());
        let m = QuadrantMapper.map(&qt);
        assert!(check_mapping(&qt, &m).is_empty());
    }

    #[test]
    fn cycle_witness_names_the_back_edge() {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Sensing, 0, 1);
        let b = g.add_task(TaskKind::Processing, 1, 1);
        let c = g.add_task(TaskKind::Processing, 2, 1);
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 1);
        let cycle = find_cycle(&g).unwrap();
        assert_eq!(cycle.len(), 3);
        let d = check_graph(&g);
        assert!(d.has_code(Code::GM001), "{}", d.render_text());
        assert!(d.has_errors());
        // The level annotation on the closing edge also trips GM003.
        assert!(d.has_code(Code::GM003));
    }

    #[test]
    fn orphan_task_warned() {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Sensing, 0, 1);
        let b = g.add_task(TaskKind::Processing, 1, 1);
        g.add_edge(a, b, 1);
        g.add_task(TaskKind::Sensing, 0, 1); // orphan
        let d = check_graph(&g);
        assert!(d.has_code(Code::GM002), "{}", d.render_text());
        assert_eq!(d.error_count(), 0);
    }

    #[test]
    fn level_monotonicity_enforced_only_for_leveled_graphs() {
        let mut flat = TaskGraph::new();
        let a = flat.add_task(TaskKind::Sensing, 0, 1);
        let b = flat.add_task(TaskKind::Sensing, 0, 1);
        flat.add_edge(a, b, 1);
        assert!(!check_graph(&flat).has_code(Code::GM003));

        let mut leveled = TaskGraph::new();
        let a = leveled.add_task(TaskKind::Sensing, 2, 1);
        let b = leveled.add_task(TaskKind::Processing, 1, 1);
        leveled.add_edge(a, b, 1);
        assert!(check_graph(&leveled).has_code(Code::GM003));
    }

    #[test]
    fn broken_mapping_reports_both_constraint_codes() {
        let qt = qt(4);
        let mut m = QuadrantMapper.map(&qt);
        // Duplicate a leaf assignment (coverage) and swap a leaf across
        // quadrants (spatial correlation).
        m.assign(0, m.node_of(1));
        let far = GridCoord { col: 3, row: 3 };
        m.assign(2, far);
        let d = check_mapping(&qt, &m);
        assert!(d.has_code(Code::GM004), "{}", d.render_text());
        assert!(d.has_code(Code::GM005), "{}", d.render_text());
        assert!(d.has_errors());
    }
}
