//! Pass 1 — program well-formedness.
//!
//! Purely syntactic checks on a [`GuardedProgram`]: every variable read or
//! written must be declared (the interpreter panics on either), state
//! declarations must be unique and constant-initialized, the runtime's
//! `start` trigger must exist, and receive-only constructs
//! (`MergeIncoming`, `CountIncoming`, `IncomingFromSelf`, nested
//! `Received`) must not appear in state rules, where no incoming message
//! is bound and they would panic or never hold.

use crate::diag::{Code, Diagnostic, Diagnostics, Span};
use std::collections::{HashMap, HashSet};
use wsn_synth::{Action, Expr, Guard, GuardedProgram};

/// Runs the well-formedness pass.
pub fn check_program(program: &GuardedProgram) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let mut declared: HashSet<&str> = HashSet::new();

    for (index, decl) in program.state.iter().enumerate() {
        let span = Span::State {
            index,
            name: decl.name.clone(),
        };
        if !declared.insert(&decl.name) {
            diags.push(
                Diagnostic::error(
                    Code::WF001,
                    span.clone(),
                    format!("state variable {:?} is declared more than once", decl.name),
                )
                .with_suggestion("remove or rename the later declaration"),
            );
        }
        if !matches!(decl.init, Expr::Int(_) | Expr::Bool(_)) {
            diags.push(
                Diagnostic::error(
                    Code::WF005,
                    span,
                    format!(
                        "initializer of {:?} is not a constant; the interpreter only accepts literal initial values",
                        decl.name
                    ),
                )
                .with_suggestion("fold the initializer to an Int or Bool literal"),
            );
        }
    }

    if !declared.contains("start") {
        diags.push(
            Diagnostic::error(
                Code::WF008,
                Span::Program,
                "no 'start' state variable: the runtime triggers execution by flipping start to true, and the interpreter rejects programs without it",
            )
            .with_suggestion("declare start(= false) and guard the boot rule on start = true"),
        );
    }

    let mut labels: HashMap<&str, usize> = HashMap::new();
    for (r, rule) in program.rules.iter().enumerate() {
        if let Some(&first) = labels.get(rule.label.as_str()) {
            diags.push(Diagnostic::warning(
                Code::WF009,
                Span::Rule {
                    rule: r,
                    label: rule.label.clone(),
                },
                format!(
                    "rule label {:?} already used by rule[{first}]; diagnostics and traces become ambiguous",
                    rule.label
                ),
            ));
        } else {
            labels.insert(&rule.label, r);
        }

        let is_receive_rule = rule.guard == Guard::Received;
        let rule_span = Span::Rule {
            rule: r,
            label: rule.label.clone(),
        };
        check_guard(
            &rule.guard,
            &declared,
            &rule_span,
            is_receive_rule,
            &mut diags,
        );
        let mut path = Vec::new();
        check_actions(
            &rule.actions,
            &declared,
            r,
            &mut path,
            is_receive_rule,
            &mut diags,
        );
    }

    diags
}

fn check_expr(e: &Expr, declared: &HashSet<&str>, span: &Span, diags: &mut Diagnostics) {
    match e {
        Expr::Int(_) | Expr::Bool(_) => {}
        Expr::Var(name) => {
            if !declared.contains(name.as_str()) {
                diags.push(
                    Diagnostic::error(
                        Code::WF002,
                        span.clone(),
                        format!("variable {name:?} is read but never declared"),
                    )
                    .with_suggestion(format!("declare {name:?} in the state section")),
                );
            }
        }
        Expr::Add(a, b) | Expr::Sub(a, b) => {
            check_expr(a, declared, span, diags);
            check_expr(b, declared, span, diags);
        }
        Expr::MsgsReceivedAt(idx) => check_expr(idx, declared, span, diags),
    }
}

fn check_guard(
    g: &Guard,
    declared: &HashSet<&str>,
    span: &Span,
    in_receive_context: bool,
    diags: &mut Diagnostics,
) {
    match g {
        Guard::Eq(a, b) => {
            check_expr(a, declared, span, diags);
            check_expr(b, declared, span, diags);
        }
        Guard::Received | Guard::IncomingFromSelf => {
            if !in_receive_context {
                diags.push(
                    Diagnostic::error(
                        Code::WF004,
                        span.clone(),
                        format!(
                            "{} can never hold in a state rule: no incoming message is bound during the scan",
                            if *g == Guard::Received { "'received'" } else { "'incoming from self'" }
                        ),
                    )
                    .with_suggestion("move the clause to a rule whose guard is exactly 'received'"),
                );
            }
        }
        Guard::And(a, b) => {
            check_guard(a, declared, span, in_receive_context, diags);
            check_guard(b, declared, span, in_receive_context, diags);
        }
    }
}

fn check_actions(
    actions: &[Action],
    declared: &HashSet<&str>,
    rule: usize,
    path: &mut Vec<usize>,
    in_receive_rule: bool,
    diags: &mut Diagnostics,
) {
    for (i, action) in actions.iter().enumerate() {
        path.push(i);
        let span = Span::Action {
            rule,
            path: path.clone(),
        };
        match action {
            Action::Set(name, e) => {
                if !declared.contains(name.as_str()) {
                    diags.push(
                        Diagnostic::error(
                            Code::WF003,
                            span.clone(),
                            format!("assignment to undeclared variable {name:?}"),
                        )
                        .with_suggestion(format!("declare {name:?} in the state section")),
                    );
                }
                check_expr(e, declared, &span, diags);
            }
            Action::ComputeLocalSummary => {}
            Action::MergeIncoming | Action::CountIncoming => {
                if !in_receive_rule {
                    let what = if matches!(action, Action::MergeIncoming) {
                        "merge of the incoming message"
                    } else {
                        "count of the incoming message"
                    };
                    diags.push(
                        Diagnostic::error(
                            Code::WF004,
                            span,
                            format!(
                                "{what} appears in a state rule; outside a receive rule there is no incoming message and the interpreter panics"
                            ),
                        )
                        .with_suggestion("move the action into the 'received' rule"),
                    );
                }
            }
            Action::IfElse {
                cond,
                then,
                otherwise,
            } => {
                check_guard(cond, declared, &span, in_receive_rule, diags);
                path.push(0);
                check_actions(then, declared, rule, path, in_receive_rule, diags);
                path.pop();
                path.push(1);
                check_actions(otherwise, declared, rule, path, in_receive_rule, diags);
                path.pop();
            }
            Action::SendSummaryToLeader {
                group_level,
                data_level,
            } => {
                check_expr(group_level, declared, &span, diags);
                check_expr(data_level, declared, &span, diags);
            }
            Action::ExfiltrateSummary { level } => check_expr(level, declared, &span, diags),
        }
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_synth::{synthesize_quadtree_program, Rule, StateDecl};

    #[test]
    fn figure4_is_well_formed() {
        for depth in 1..=4 {
            let d = check_program(&synthesize_quadtree_program(depth));
            assert!(d.is_empty(), "depth {depth}: {}", d.render_text());
        }
    }

    #[test]
    fn unbound_read_and_write_flagged() {
        let mut p = synthesize_quadtree_program(2);
        p.rules[0]
            .actions
            .push(Action::Set("ghost".into(), Expr::var("phantom")));
        let d = check_program(&p);
        assert!(d.has_code(Code::WF003), "{}", d.render_text());
        assert!(d.has_code(Code::WF002), "{}", d.render_text());
        assert_eq!(d.error_count(), 2);
    }

    #[test]
    fn receive_only_constructs_in_state_rule_flagged() {
        let mut p = synthesize_quadtree_program(2);
        p.rules.push(Rule {
            label: "rogue".into(),
            guard: Guard::Eq(Expr::var("start"), Expr::Bool(true)).and(Guard::IncomingFromSelf),
            actions: vec![Action::MergeIncoming, Action::CountIncoming],
        });
        let d = check_program(&p);
        let wf004 = d.items().iter().filter(|x| x.code == Code::WF004).count();
        assert_eq!(wf004, 3, "{}", d.render_text());
    }

    #[test]
    fn duplicate_and_nonconstant_state_flagged() {
        let mut p = synthesize_quadtree_program(1);
        p.state.push(StateDecl {
            name: "start".into(),
            init: Expr::Bool(true),
        });
        p.state.push(StateDecl {
            name: "derived".into(),
            init: Expr::var("recLevel").plus(1),
        });
        let d = check_program(&p);
        assert!(d.has_code(Code::WF001));
        assert!(d.has_code(Code::WF005));
    }

    #[test]
    fn missing_start_flag_flagged() {
        let mut p = synthesize_quadtree_program(1);
        p.state.retain(|s| s.name != "start");
        p.rules.retain(|r| r.label != "start");
        let d = check_program(&p);
        assert!(d.has_code(Code::WF008), "{}", d.render_text());
    }

    #[test]
    fn duplicate_labels_warn() {
        let mut p = synthesize_quadtree_program(1);
        let mut copy = p.rules[3].clone();
        copy.guard = Guard::Eq(Expr::var("recLevel"), Expr::Int(-5));
        p.rules.push(copy);
        let d = check_program(&p);
        assert!(d.has_code(Code::WF009));
        assert_eq!(d.error_count(), 0);
    }
}
