//! Pass 7 — frame-layout & allocation certification: `FL001`–`FL005`,
//! `AL001`–`AL003`, and the machine-checkable [`FrameCertificate`] that
//! licenses the zero-copy runtime configuration.
//!
//! The zero-copy hot path (`wsn-runtime`'s `FramedProgram` over
//! `PhysicalRuntime<FrameBuf>`) moves every message as one fixed
//! `[u8; FRAME_BYTES]` frame from a run-sized pool: no heap allocation
//! per event, causal stamps written in place. That configuration is sound
//! exactly when three static facts hold of the program:
//!
//! 1. **Every reachable send site fits the frame** — the §4 closed-form
//!    payload bound of the site's data level, in bytes
//!    ([`wsn_core::payload_bound_bytes`]), is at most
//!    `FRAME_PAYLOAD_CAPACITY` (`FL001`), which requires the data level
//!    itself to be statically bounded by the hierarchy (`FL002`).
//! 2. **Everything shipped has a wire form** — a send must never ship a
//!    partially merged summary (`RegionSummary::Partial` has no frame
//!    encoding): a site whose data level reaches the group level it
//!    addresses ships a slot that is still accumulating (`FL003`), and an
//!    exfiltration of a merged level needs that level's quorum barrier in
//!    the program (`FL003`).
//! 3. **The layout table itself is sound** — header fields disjoint,
//!    aligned, and inside the header (`FL004`), and the in-place causal
//!    stamp wide enough for the certified event-count bound (`FL005`).
//!
//! The `AL` codes classify runtime state for the allocation gate: a send
//! site with no static payload bound forces a per-event heap buffer
//! (`AL001`); an exfiltration fired below the hierarchy root hands its
//! buffer to the collector from a worker that does not own it — a
//! shared-ownership (`Rc`/`RefCell`) access on the hot path (`AL002`);
//! and a receive handler that writes scalar state lets the delivered
//! buffer's data escape the epoch barrier (`AL003`).
//!
//! The [`FrameCertificate`] fixes the layout table, the per-level byte
//! bounds, and the per-role payload maxima, cross-checked against
//! [`crate::certify()`]'s independently derived `net.data_units` total
//! (`CC002` on divergence) — the same schema-versioned JSON discipline as
//! the shard certificate.

use crate::certify::{certify, CertConfig};
use crate::diag::{Code, Diagnostic, Diagnostics, Span};
use crate::footprint::role_footprints;
use crate::opt::optimize_program;
use crate::reach::ReachConfig;
use std::collections::BTreeMap;
use wsn_core::framelayout::{
    FRAME_BYTES, FRAME_HEADER_BYTES, FRAME_PAYLOAD_CAPACITY, HEADER_FIELDS, RTMSG_VARIANTS,
    STAMP_WIDTH_BYTES,
};
use wsn_core::{
    payload_bound_bytes, payload_bound_units, FrameField, Hierarchy, VariantLayout,
    FRAME_LAYOUT_VERSION,
};
use wsn_synth::{Action, Guard, GuardedProgram};

/// The frame-certificate schema this encoder emits and this decoder
/// understands.
pub const FRAME_CERT_SCHEMA_VERSION: u64 = 1;

/// Conservative kernel events per physical hop (transmit, receive, MAC
/// timers, bookkeeping) used for the `FL005` stamp-width bound.
const EVENTS_PER_HOP: u64 = 8;

/// One row of the certificate's per-level byte table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLevelBound {
    /// Data level `l`.
    pub level: u8,
    /// Extent side `2^l` the level-`l` summary covers.
    pub extent_side: u32,
    /// Closed-form wire bound in bytes.
    pub bound_bytes: u64,
    /// The §4 closed-form payload size in data units (the certifier's
    /// `FullBoundary` profile) — the cross-check anchor.
    pub bound_units: u64,
}

/// Per-role payload maximum over every reachable send/exfiltration site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolePayload {
    /// Highest leader level of the cells this row covers.
    pub role: u8,
    /// Maximum bytes any reachable site at this role puts on the wire.
    pub max_payload_bytes: u64,
    /// Reachable send sites at this role.
    pub send_sites: u64,
    /// Reachable exfiltration sites at this role.
    pub exfil_sites: u64,
}

/// A machine-checkable frame-layout certificate: the layout table the
/// codec compiled against, the per-level byte bounds, the per-role
/// maxima, and the allocation-discipline claim they support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameCertificate {
    /// Grid side `s`.
    pub side: u32,
    /// Hierarchy depth `p = log₂ s`.
    pub depth: u8,
    /// Layout-table schema the codec and this certificate share.
    pub layout_version: u64,
    /// Total frame size in bytes.
    pub frame_bytes: u64,
    /// Header region size in bytes.
    pub header_bytes: u64,
    /// Payload region capacity in bytes.
    pub payload_capacity: u64,
    /// Width of each causal-stamp component.
    pub stamp_width_bytes: u64,
    /// Conservative upper bound on kernel events in one run (what the
    /// stamp must be able to number).
    pub event_bound: u64,
    /// Per-level closed-form byte and unit bounds, levels `0..=p`.
    pub levels: Vec<FrameLevelBound>,
    /// Per-role payload maxima, roles `0..=p`.
    pub roles: Vec<RolePayload>,
    /// Maximum bytes any reachable site puts on the wire.
    pub max_payload_bytes: u64,
    /// The certifier's `net.data_units` upper bound this table was
    /// cross-checked against.
    pub total_data_units: u64,
    /// The byte bound as mathematics in the extent side.
    pub symbolic: String,
}

impl FrameCertificate {
    /// Whether the certified worst case fits the frame (always true of an
    /// issued certificate; kept explicit for decoded ones).
    pub fn fits(&self) -> bool {
        self.max_payload_bytes <= self.payload_capacity
    }

    /// Renders the certificate as terminal text.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "frame certificate: side {} depth {} -> {}-byte frames ({}-byte header, \
             {}-byte payload region), layout v{}\n  max reachable payload {} byte(s); \
             stamp {}x{} byte(s) numbers up to {} event(s)\n  byte bound: {}\n  levels:\n",
            self.side,
            self.depth,
            self.frame_bytes,
            self.header_bytes,
            self.payload_capacity,
            self.layout_version,
            self.max_payload_bytes,
            2,
            self.stamp_width_bytes,
            self.event_bound,
            self.symbolic,
        );
        for l in &self.levels {
            out.push_str(&format!(
                "    level {}: extent {}x{} -> {} byte(s), {} unit(s)\n",
                l.level, l.extent_side, l.extent_side, l.bound_bytes, l.bound_units
            ));
        }
        out.push_str("  roles:\n");
        for r in &self.roles {
            out.push_str(&format!(
                "    role {}: max {} byte(s) over {} send / {} exfil site(s)\n",
                r.role, r.max_payload_bytes, r.send_sites, r.exfil_sites
            ));
        }
        out
    }
}

/// Encodes a certificate as schema-versioned JSON, layout table included
/// (so a decoded certificate pins the exact offsets it certified).
pub fn frame_cert_to_json(cert: &FrameCertificate) -> wsn_obs::Json {
    use wsn_obs::Json;
    let fields = HEADER_FIELDS
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("name".to_owned(), Json::Str(f.name.to_owned())),
                ("offset".to_owned(), Json::from_u64(f.offset as u64)),
                ("width".to_owned(), Json::from_u64(f.width as u64)),
                ("align".to_owned(), Json::from_u64(f.align as u64)),
            ])
        })
        .collect();
    let variants = RTMSG_VARIANTS
        .iter()
        .map(|v| {
            Json::Obj(vec![
                ("tag".to_owned(), Json::from_u64(u64::from(v.tag))),
                ("name".to_owned(), Json::Str(v.name.to_owned())),
                ("carries_payload".to_owned(), Json::Bool(v.carries_payload)),
                ("stamped".to_owned(), Json::Bool(v.stamped)),
            ])
        })
        .collect();
    let levels = cert
        .levels
        .iter()
        .map(|l| {
            Json::Obj(vec![
                ("level".to_owned(), Json::from_u64(u64::from(l.level))),
                (
                    "extent_side".to_owned(),
                    Json::from_u64(u64::from(l.extent_side)),
                ),
                ("bound_bytes".to_owned(), Json::from_u64(l.bound_bytes)),
                ("bound_units".to_owned(), Json::from_u64(l.bound_units)),
            ])
        })
        .collect();
    let roles = cert
        .roles
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("role".to_owned(), Json::from_u64(u64::from(r.role))),
                (
                    "max_payload_bytes".to_owned(),
                    Json::from_u64(r.max_payload_bytes),
                ),
                ("send_sites".to_owned(), Json::from_u64(r.send_sites)),
                ("exfil_sites".to_owned(), Json::from_u64(r.exfil_sites)),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "schema_version".to_owned(),
            Json::from_u64(FRAME_CERT_SCHEMA_VERSION),
        ),
        ("side".to_owned(), Json::from_u64(u64::from(cert.side))),
        ("depth".to_owned(), Json::from_u64(u64::from(cert.depth))),
        (
            "layout_version".to_owned(),
            Json::from_u64(cert.layout_version),
        ),
        ("frame_bytes".to_owned(), Json::from_u64(cert.frame_bytes)),
        ("header_bytes".to_owned(), Json::from_u64(cert.header_bytes)),
        (
            "payload_capacity".to_owned(),
            Json::from_u64(cert.payload_capacity),
        ),
        (
            "stamp_width_bytes".to_owned(),
            Json::from_u64(cert.stamp_width_bytes),
        ),
        ("event_bound".to_owned(), Json::from_u64(cert.event_bound)),
        (
            "max_payload_bytes".to_owned(),
            Json::from_u64(cert.max_payload_bytes),
        ),
        (
            "total_data_units".to_owned(),
            Json::from_u64(cert.total_data_units),
        ),
        ("symbolic".to_owned(), Json::Str(cert.symbolic.clone())),
        ("layout".to_owned(), Json::Arr(fields)),
        ("variants".to_owned(), Json::Arr(variants)),
        ("levels".to_owned(), Json::Arr(levels)),
        ("roles".to_owned(), Json::Arr(roles)),
    ])
}

/// Decodes a certificate from its JSON encoding (version-gated).
pub fn frame_cert_from_json(v: &wsn_obs::Json) -> Result<FrameCertificate, String> {
    use wsn_obs::Json;
    let version = v
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("frame certificate without schema_version")?;
    if version != FRAME_CERT_SCHEMA_VERSION {
        return Err(format!(
            "unsupported frame-certificate schema_version {version} (this reader \
             understands {FRAME_CERT_SCHEMA_VERSION})"
        ));
    }
    let u = |key: &str| {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("frame certificate without {key}"))
    };
    let mut levels = Vec::new();
    for e in v
        .get("levels")
        .and_then(Json::as_arr)
        .ok_or("frame certificate without levels")?
    {
        let f = |key: &str| {
            e.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("level row without {key}"))
        };
        levels.push(FrameLevelBound {
            level: u8::try_from(f("level")?).map_err(|_| "level overflows u8")?,
            extent_side: u32::try_from(f("extent_side")?)
                .map_err(|_| "extent_side overflows u32")?,
            bound_bytes: f("bound_bytes")?,
            bound_units: f("bound_units")?,
        });
    }
    let mut roles = Vec::new();
    for e in v
        .get("roles")
        .and_then(Json::as_arr)
        .ok_or("frame certificate without roles")?
    {
        let f = |key: &str| {
            e.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("role row without {key}"))
        };
        roles.push(RolePayload {
            role: u8::try_from(f("role")?).map_err(|_| "role overflows u8")?,
            max_payload_bytes: f("max_payload_bytes")?,
            send_sites: f("send_sites")?,
            exfil_sites: f("exfil_sites")?,
        });
    }
    Ok(FrameCertificate {
        side: u32::try_from(u("side")?).map_err(|_| "side overflows u32")?,
        depth: u8::try_from(u("depth")?).map_err(|_| "depth overflows u8")?,
        layout_version: u("layout_version")?,
        frame_bytes: u("frame_bytes")?,
        header_bytes: u("header_bytes")?,
        payload_capacity: u("payload_capacity")?,
        stamp_width_bytes: u("stamp_width_bytes")?,
        event_bound: u("event_bound")?,
        levels,
        roles,
        max_payload_bytes: u("max_payload_bytes")?,
        total_data_units: u("total_data_units")?,
        symbolic: v
            .get("symbolic")
            .and_then(Json::as_str)
            .ok_or("frame certificate without symbolic")?
            .to_owned(),
    })
}

/// `FL004`: checks a header field table against a frame geometry. The
/// committed table is checked on every certifier run; the
/// parameterization exists so the check itself is testable against
/// doctored tables.
pub fn check_layout_table(
    fields: &[FrameField],
    header_bytes: usize,
    frame_bytes: usize,
    payload_capacity: usize,
) -> Diagnostics {
    let mut diags = Diagnostics::new();
    if header_bytes + payload_capacity != frame_bytes {
        diags.push(Diagnostic::error(
            Code::FL004,
            Span::Program,
            format!(
                "frame geometry does not add up: {header_bytes}-byte header + \
                 {payload_capacity}-byte payload != {frame_bytes}-byte frame"
            ),
        ));
    }
    let mut end = 0usize;
    for f in fields {
        if f.width == 0 {
            diags.push(Diagnostic::error(
                Code::FL004,
                Span::Program,
                format!("layout field {} has zero width", f.name),
            ));
        }
        if f.offset < end {
            diags.push(
                Diagnostic::error(
                    Code::FL004,
                    Span::Program,
                    format!(
                        "layout field {} at offset {} overlaps its predecessor (ends at {end})",
                        f.name, f.offset
                    ),
                )
                .with_suggestion("layout fields must be disjoint and in offset order"),
            );
        }
        if f.align == 0 || f.offset % f.align.max(1) != 0 {
            diags.push(Diagnostic::error(
                Code::FL004,
                Span::Program,
                format!(
                    "layout field {} at offset {} violates its {}-byte alignment",
                    f.name, f.offset, f.align
                ),
            ));
        }
        end = end.max(f.end());
    }
    if end > header_bytes {
        diags.push(Diagnostic::error(
            Code::FL004,
            Span::Program,
            format!(
                "layout fields spill into the payload region: header ends at {end} of \
                 {header_bytes}"
            ),
        ));
    }
    diags.sort();
    diags
}

/// `FL003`/`FL004`: checks a variant table against a field table —
/// every slot must exist, tags must be unique and nonzero (0 is the
/// empty-frame sentinel), and the stamp flag must agree with the slots.
pub fn check_variant_table(variants: &[VariantLayout], fields: &[FrameField]) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let names: Vec<&str> = fields.iter().map(|f| f.name).collect();
    let mut seen = BTreeMap::new();
    for v in variants {
        if v.tag == 0 {
            diags.push(Diagnostic::error(
                Code::FL003,
                Span::Program,
                format!(
                    "variant {} uses reserved tag 0 (the empty-frame sentinel)",
                    v.name
                ),
            ));
        }
        if let Some(prev) = seen.insert(v.tag, v.name) {
            diags.push(Diagnostic::error(
                Code::FL003,
                Span::Program,
                format!(
                    "variants {} and {} share tag {}: frames cannot represent both",
                    prev, v.name, v.tag
                ),
            ));
        }
        for slot in v.slots {
            if !names.contains(slot) {
                diags.push(Diagnostic::error(
                    Code::FL003,
                    Span::Program,
                    format!(
                        "variant {} maps onto slot {slot} which the layout table does not \
                         declare: the variant has no wire representation",
                        v.name
                    ),
                ));
            }
        }
        if v.stamped != v.slots.contains(&"stamp_seq") {
            diags.push(Diagnostic::error(
                Code::FL004,
                Span::Program,
                format!(
                    "variant {}: stamp flag and slot usage disagree, so in-place re-stamping \
                     would corrupt the frame",
                    v.name
                ),
            ));
        }
    }
    diags.sort();
    diags
}

/// `FL005`: whether a `width_bytes`-wide stamp component can number
/// `event_bound` events.
pub fn check_stamp_width(width_bytes: u64, event_bound: u64) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let capacity = if width_bytes >= 8 {
        u64::MAX
    } else {
        (1u64 << (8 * width_bytes)) - 1
    };
    if event_bound > capacity {
        diags.push(
            Diagnostic::error(
                Code::FL005,
                Span::Program,
                format!(
                    "a {width_bytes}-byte stamp component wraps at {capacity} but the run's \
                     event-count bound is {event_bound}: in-place stamps would collide"
                ),
            )
            .with_suggestion("widen the stamp fields or shrink the deployment"),
        );
    }
    diags
}

/// Recomputes the certifier's `net.data_units` upper bound from the
/// frame table's per-level unit column: `Σ_l k · (s/2^l)² merges × 4
/// senders × units(l−1)` — the independent arithmetic behind the `CC002`
/// cross-check.
pub fn recompute_data_units(side: u32, k_send: u64) -> u64 {
    let p = Hierarchy::new(side).max_level();
    (1..=p)
        .map(|l| {
            let merges = u64::from(side >> l).pow(2);
            k_send * merges * 4 * payload_bound_units(l - 1)
        })
        .sum()
}

/// Runs the full frame-layout & allocation analysis of `program` on a
/// `side × side` deployment: well-formedness gate, layout-table checks
/// (`FL003`–`FL005`), per-site payload bounds from the role footprints
/// (`FL001`/`FL002`), partial-summary hazards (`FL003`), allocation
/// discipline (`AL001`–`AL003`), and — when everything holds — the
/// [`FrameCertificate`], cross-checked against the cost certifier
/// (`CC002`).
pub fn analyze_frames(
    program: &GuardedProgram,
    side: u32,
    config: ReachConfig,
) -> (Option<FrameCertificate>, Diagnostics) {
    let mut diags = crate::wellformed::check_program(program);
    let evaluable = !diags
        .items()
        .iter()
        .any(|d| matches!(d.code, Code::WF002 | Code::WF003));
    if !evaluable {
        diags.sort();
        return (None, diags);
    }
    let hier = Hierarchy::new(side);
    let p = hier.max_level();
    if program.max_level != p {
        diags.push(
            Diagnostic::error(
                Code::CC001,
                Span::Program,
                format!(
                    "program recursion ceiling maxrecLevel = {} diverges from the depth-{p} \
                     hierarchy of the side-{side} deployment",
                    program.max_level
                ),
            )
            .with_suggestion("certify the frame layout at the deployment's hierarchy depth"),
        );
        diags.sort();
        return (None, diags);
    }

    // ---- The table the codec compiled against (FL003/FL004/FL005) ----
    diags.extend(check_layout_table(
        HEADER_FIELDS,
        FRAME_HEADER_BYTES,
        FRAME_BYTES,
        FRAME_PAYLOAD_CAPACITY,
    ));
    diags.extend(check_variant_table(RTMSG_VARIANTS, HEADER_FIELDS));

    // ---- Per-site payload bounds from the role footprints ----
    let footprints = role_footprints(program, side, config);
    // Merge each site's data interval across roles: one finding per site.
    type SiteKey = (usize, Vec<usize>, &'static str);
    let mut data_sites: BTreeMap<SiteKey, (i64, i64)> = BTreeMap::new();
    let mut group_hi: BTreeMap<(usize, Vec<usize>), i64> = BTreeMap::new();
    let mut roles = Vec::new();
    for fp in &footprints {
        let mut role_max = 0u64;
        for (list, what) in [(&fp.reads, "send"), (&fp.exfils, "exfiltration")] {
            for site in list {
                let entry = data_sites
                    .entry((site.rule, site.path.clone(), what))
                    .or_insert((site.lo, site.hi));
                entry.0 = entry.0.min(site.lo);
                entry.1 = entry.1.max(site.hi);
                if (0..=i64::from(p)).contains(&site.lo) && (0..=i64::from(p)).contains(&site.hi) {
                    role_max = role_max.max(payload_bound_bytes(site.hi as u8));
                }
            }
        }
        for site in &fp.writes {
            let entry = group_hi
                .entry((site.rule, site.path.clone()))
                .or_insert(site.hi);
            *entry = (*entry).max(site.hi);
        }
        roles.push(RolePayload {
            role: fp.role,
            max_payload_bytes: role_max,
            send_sites: fp.reads.len() as u64,
            exfil_sites: fp.exfils.len() as u64,
        });
    }

    let mut max_payload = 0u64;
    for ((rule, path, what), (lo, hi)) in &data_sites {
        let span = Span::Action {
            rule: *rule,
            path: path.clone(),
        };
        if *lo < 0 || *hi > i64::from(p) {
            diags.push(
                Diagnostic::error(
                    Code::FL002,
                    span.clone(),
                    format!(
                        "{what} site's data level evaluates to [{lo}, {hi}], outside the \
                         deployment's levels [0, {p}]: the payload has no static byte bound"
                    ),
                )
                .with_suggestion("fix the level arithmetic; the frame layout needs a bound"),
            );
            diags.push(
                Diagnostic::error(
                    Code::AL001,
                    span,
                    format!(
                        "{what} site with unbounded payload forces a per-event heap \
                         allocation: the fixed frame cannot carry it"
                    ),
                )
                .with_suggestion("bound the payload so the arena frame pool can carry it"),
            );
            continue;
        }
        let needed = payload_bound_bytes(*hi as u8);
        max_payload = max_payload.max(needed);
        if needed > FRAME_PAYLOAD_CAPACITY as u64 {
            diags.push(
                Diagnostic::error(
                    Code::FL001,
                    span,
                    format!(
                        "{what} site ships a level-{hi} summary: the closed-form bound is \
                         {needed} byte(s), over the {FRAME_PAYLOAD_CAPACITY}-byte frame \
                         payload capacity"
                    ),
                )
                .with_suggestion(
                    "shrink the deployment, raise the frame size, or ship a lower level",
                ),
            );
        }
    }

    // FL003: a send whose data level reaches the group level it addresses
    // ships the slot the destination merge is still assembling — the slot
    // may be Partial, which has no wire form.
    for ((rule, path, what), (lo, hi)) in &data_sites {
        if *what != "send" || *hi < 1 {
            continue;
        }
        let Some(g_hi) = group_hi.get(&(*rule, path.clone())) else {
            continue;
        };
        if hi >= g_hi {
            diags.push(
                Diagnostic::error(
                    Code::FL003,
                    Span::Action {
                        rule: *rule,
                        path: path.clone(),
                    },
                    format!(
                        "send site ships data level [{lo}, {hi}] to a level-{g_hi} group: the \
                         shipped slot is at or above the level being merged, so it may still \
                         be partial — a partial summary has no wire representation"
                    ),
                )
                .with_suggestion("ship the completed child slot (data level = group level − 1)"),
            );
        }
    }
    // FL003 (exfiltration prong): exfiltrating a merged level is only
    // complete behind that level's quorum barrier.
    let quorums = crate::deadlock::quorum_specs(program);
    for ((rule, path, what), (lo, hi)) in &data_sites {
        if *what != "exfiltration" || *hi < 1 {
            continue;
        }
        let lo_checked = (*lo).max(1) as u8;
        let hi_checked = (*hi).min(i64::from(p)) as u8;
        for level in lo_checked..=hi_checked {
            if !quorums.contains_key(&level) {
                diags.push(
                    Diagnostic::error(
                        Code::FL003,
                        Span::Action {
                            rule: *rule,
                            path: path.clone(),
                        },
                        format!(
                            "exfiltration of the level-{level} summary has no level-{level} \
                             quorum barrier in the program: the slot may leave mid-merge"
                        ),
                    )
                    .with_suggestion("guard the exfiltration behind the level's merge quorum"),
                );
            }
        }
    }

    // AL002: an exfiltration fired below the root role hands its buffer
    // to the shared collector from a worker that does not own it.
    for fp in &footprints {
        if fp.role == p {
            continue;
        }
        for site in &fp.exfils {
            diags.push(
                Diagnostic::error(
                    Code::AL002,
                    Span::Action {
                        rule: site.rule,
                        path: site.path.clone(),
                    },
                    format!(
                        "exfiltration reachable at role {} (below the depth-{p} root): on the \
                         parallel kernel the collector is shared state, so this is an \
                         Rc/RefCell access on the certified hot path",
                        fp.role
                    ),
                )
                .with_suggestion("only the root role may exfiltrate on the zero-copy path"),
            );
        }
    }

    // AL003: receive handlers that write scalar state let the delivered
    // buffer's data escape the epoch barrier.
    for (r, rule) in program.rules.iter().enumerate() {
        if !guard_is_receive(&rule.guard) {
            continue;
        }
        let mut path = Vec::new();
        report_buffer_escapes(r, &rule.actions, &mut path, &mut diags);
    }

    // ---- Cross-check against the cost certifier (CC002) ----
    let (cert, cert_diags) = certify(program, &CertConfig::paper(side));
    diags.extend(cert_diags);
    let cfg = CertConfig::paper(side);
    for l in 0..p {
        if cfg.payload_hi.units(l) != payload_bound_units(l) {
            diags.push(Diagnostic::error(
                Code::CC002,
                Span::Level(l),
                format!(
                    "frame byte table prices the level-{l} summary at {} unit(s) but the cost \
                     certifier's profile says {}: the byte bounds do not cover the certified \
                     traffic",
                    payload_bound_units(l),
                    cfg.payload_hi.units(l)
                ),
            ));
        }
    }
    let (_, facts, _) = optimize_program(program);
    let k_send = facts.live_send_sites(program) as u64;
    let certified_units = cert
        .bound("net.data_units")
        .map(|b| b.interval.hi as u64)
        .unwrap_or(0);
    let recomputed = recompute_data_units(side, k_send);
    if k_send >= 1 && recomputed != certified_units {
        diags.push(
            Diagnostic::error(
                Code::CC002,
                Span::Program,
                format!(
                    "frame table accounts for {recomputed} data unit(s) but the certifier \
                     bounds net.data_units at {certified_units}: the byte table and the cost \
                     certificate diverge"
                ),
            )
            .with_suggestion("the payload closed forms disagree; file a bug"),
        );
    }

    // ---- The certificate, only once everything above holds ----
    let total_messages = cert
        .bound("net.messages")
        .map(|b| b.interval.hi as u64)
        .unwrap_or(0);
    let event_bound = total_messages
        .saturating_mul(u64::from(2 * side))
        .saturating_mul(EVENTS_PER_HOP);
    diags.extend(check_stamp_width(STAMP_WIDTH_BYTES as u64, event_bound));

    let frame_cert = if k_send >= 1 && !diags.has_errors() {
        Some(FrameCertificate {
            side,
            depth: p,
            layout_version: FRAME_LAYOUT_VERSION,
            frame_bytes: FRAME_BYTES as u64,
            header_bytes: FRAME_HEADER_BYTES as u64,
            payload_capacity: FRAME_PAYLOAD_CAPACITY as u64,
            stamp_width_bytes: STAMP_WIDTH_BYTES as u64,
            event_bound,
            levels: (0..=p)
                .map(|l| FrameLevelBound {
                    level: l,
                    extent_side: 1u32 << l,
                    bound_bytes: payload_bound_bytes(l),
                    bound_units: payload_bound_units(l),
                })
                .collect(),
            roles,
            max_payload_bytes: max_payload,
            total_data_units: certified_units,
            symbolic: "16 + 24 + 4·perim + 8·perim + 8·⌈s²/2⌉ bytes, s = 2^l, \
                       perim = max(1, 4s − 4)"
                .to_owned(),
        })
    } else {
        None
    };
    diags.sort();
    (frame_cert, diags)
}

fn guard_is_receive(g: &Guard) -> bool {
    match g {
        Guard::Received => true,
        Guard::And(a, b) => guard_is_receive(a) || guard_is_receive(b),
        _ => false,
    }
}

fn report_buffer_escapes(
    rule: usize,
    actions: &[Action],
    path: &mut Vec<usize>,
    diags: &mut Diagnostics,
) {
    for (i, action) in actions.iter().enumerate() {
        path.push(i);
        match action {
            Action::Set(name, _) => diags.push(
                Diagnostic::error(
                    Code::AL003,
                    Span::Action {
                        rule,
                        path: path.clone(),
                    },
                    format!(
                        "receive handler writes scalar state {name:?}: the delivered buffer's \
                         data escapes the epoch barrier, so the frame cannot be recycled at \
                         end of event"
                    ),
                )
                .with_suggestion(
                    "merge and count in receive handlers; mutate state behind the quorum guard",
                ),
            ),
            Action::IfElse {
                then, otherwise, ..
            } => {
                path.push(0);
                report_buffer_escapes(rule, then, path, diags);
                path.pop();
                path.push(1);
                report_buffer_escapes(rule, otherwise, path, diags);
                path.pop();
            }
            _ => {}
        }
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_obs::Json;
    use wsn_synth::{synthesize_quadtree_program, Expr};

    fn fig4_cert(side: u32) -> (Option<FrameCertificate>, Diagnostics) {
        let depth = u8::try_from(side.trailing_zeros()).unwrap();
        let program = synthesize_quadtree_program(depth);
        analyze_frames(&program, side, ReachConfig::default())
    }

    #[test]
    fn faithful_figure4_certifies_at_matrix_sides() {
        for side in [4u32, 8, 16] {
            let (cert, diags) = fig4_cert(side);
            assert_eq!(
                diags.error_count(),
                0,
                "side {side}: {}",
                diags.render_text()
            );
            let cert = cert.expect("clean figure-4 must certify");
            assert!(cert.fits());
            let p = side.trailing_zeros() as u8;
            assert_eq!(cert.depth, p);
            assert_eq!(cert.levels.len(), usize::from(p) + 1);
            assert_eq!(cert.roles.len(), usize::from(p) + 1);
            // The worst reachable payload is the root's exfiltration of
            // the whole-grid summary.
            assert_eq!(cert.max_payload_bytes, payload_bound_bytes(p));
            assert_eq!(
                cert.roles.last().unwrap().max_payload_bytes,
                payload_bound_bytes(p)
            );
            // Only the root role exfiltrates.
            for r in &cert.roles[..cert.roles.len() - 1] {
                assert_eq!(r.exfil_sites, 0, "role {}", r.role);
            }
        }
    }

    #[test]
    fn byte_table_cross_checks_the_certifiers_data_units() {
        // The CC002 anchor: the frame table's unit column re-derives the
        // certified net.data_units total exactly.
        let (cert, _) = fig4_cert(4);
        assert_eq!(cert.unwrap().total_data_units, 52);
        assert_eq!(recompute_data_units(4, 1), 52);
        let (cert8, _) = fig4_cert(8);
        assert_eq!(cert8.unwrap().total_data_units, recompute_data_units(8, 1));
    }

    #[test]
    fn oversized_deployment_trips_fl001() {
        // At side 32 the root's whole-grid summary bound exceeds the
        // frame payload capacity: the faithful program itself overflows.
        let (cert, diags) = fig4_cert(32);
        assert!(cert.is_none());
        assert!(diags.has_code(Code::FL001), "{}", diags.render_text());
    }

    #[test]
    fn escaping_data_level_trips_fl002_and_al001() {
        let mut program = synthesize_quadtree_program(2);
        program.rules[0]
            .actions
            .push(wsn_synth::Action::SendSummaryToLeader {
                group_level: Expr::Int(1),
                data_level: Expr::var("maxrecLevel").plus(3),
            });
        let (cert, diags) = analyze_frames(&program, 4, ReachConfig::default());
        assert!(cert.is_none());
        assert!(diags.has_code(Code::FL002), "{}", diags.render_text());
        assert!(diags.has_code(Code::AL001), "{}", diags.render_text());
    }

    #[test]
    fn shipping_the_merging_slot_trips_fl003() {
        // data_level = group_level ships the slot the destination is
        // still assembling: a Partial, which has no wire form.
        let mut program = synthesize_quadtree_program(2);
        program.rules[3]
            .actions
            .push(wsn_synth::Action::SendSummaryToLeader {
                group_level: Expr::var("recLevel"),
                data_level: Expr::var("recLevel"),
            });
        let (cert, diags) = analyze_frames(&program, 4, ReachConfig::default());
        assert!(cert.is_none());
        assert!(diags.has_code(Code::FL003), "{}", diags.render_text());
    }

    #[test]
    fn non_root_exfiltration_trips_al002() {
        let mut program = synthesize_quadtree_program(2);
        program.rules[0]
            .actions
            .push(wsn_synth::Action::ExfiltrateSummary {
                level: Expr::Int(0),
            });
        let (cert, diags) = analyze_frames(&program, 4, ReachConfig::default());
        assert!(cert.is_none());
        assert!(diags.has_code(Code::AL002), "{}", diags.render_text());
    }

    #[test]
    fn scalar_write_in_receive_handler_trips_al003() {
        let mut program = synthesize_quadtree_program(2);
        for rule in &mut program.rules {
            if guard_is_receive(&rule.guard) {
                rule.actions
                    .push(wsn_synth::Action::Set("transmit".into(), Expr::Bool(true)));
            }
        }
        let (cert, diags) = analyze_frames(&program, 4, ReachConfig::default());
        assert!(cert.is_none());
        assert!(diags.has_code(Code::AL003), "{}", diags.render_text());
    }

    #[test]
    fn depth_mismatch_refuses_a_certificate() {
        let program = synthesize_quadtree_program(3);
        let (cert, diags) = analyze_frames(&program, 4, ReachConfig::default());
        assert!(cert.is_none());
        assert!(diags.has_code(Code::CC001), "{}", diags.render_text());
    }

    #[test]
    fn doctored_layout_tables_trip_fl004() {
        // Overlap.
        let overlap = [
            FrameField {
                name: "a",
                offset: 0,
                width: 4,
                align: 4,
            },
            FrameField {
                name: "b",
                offset: 2,
                width: 4,
                align: 2,
            },
        ];
        let d = check_layout_table(&overlap, 64, 2048, 1984);
        assert!(d.has_code(Code::FL004), "{}", d.render_text());
        // Misalignment.
        let misaligned = [FrameField {
            name: "a",
            offset: 3,
            width: 8,
            align: 8,
        }];
        let d = check_layout_table(&misaligned, 64, 2048, 1984);
        assert!(d.has_code(Code::FL004), "{}", d.render_text());
        // Spill past the header.
        let spill = [FrameField {
            name: "a",
            offset: 60,
            width: 8,
            align: 4,
        }];
        let d = check_layout_table(&spill, 64, 2048, 1984);
        assert!(d.has_code(Code::FL004), "{}", d.render_text());
        // Geometry mismatch.
        let d = check_layout_table(&[], 64, 2048, 1000);
        assert!(d.has_code(Code::FL004), "{}", d.render_text());
        // The committed table is clean.
        let d = check_layout_table(
            HEADER_FIELDS,
            FRAME_HEADER_BYTES,
            FRAME_BYTES,
            FRAME_PAYLOAD_CAPACITY,
        );
        assert_eq!(d.error_count(), 0, "{}", d.render_text());
    }

    #[test]
    fn doctored_variant_tables_trip_fl003_and_fl004() {
        let unknown_slot = [VariantLayout {
            tag: 1,
            name: "Ghost",
            slots: &["no_such_slot"],
            carries_payload: false,
            stamped: false,
        }];
        let d = check_variant_table(&unknown_slot, HEADER_FIELDS);
        assert!(d.has_code(Code::FL003), "{}", d.render_text());
        let dup = [
            VariantLayout {
                tag: 1,
                name: "A",
                slots: &[],
                carries_payload: false,
                stamped: false,
            },
            VariantLayout {
                tag: 1,
                name: "B",
                slots: &[],
                carries_payload: false,
                stamped: false,
            },
        ];
        let d = check_variant_table(&dup, HEADER_FIELDS);
        assert!(d.has_code(Code::FL003), "{}", d.render_text());
        let bad_stamp = [VariantLayout {
            tag: 2,
            name: "C",
            slots: &[],
            carries_payload: false,
            stamped: true,
        }];
        let d = check_variant_table(&bad_stamp, HEADER_FIELDS);
        assert!(d.has_code(Code::FL004), "{}", d.render_text());
        // The committed table is clean.
        let d = check_variant_table(RTMSG_VARIANTS, HEADER_FIELDS);
        assert_eq!(d.error_count(), 0, "{}", d.render_text());
    }

    #[test]
    fn narrow_stamps_trip_fl005() {
        let d = check_stamp_width(2, 1 << 20);
        assert!(d.has_code(Code::FL005), "{}", d.render_text());
        assert!(check_stamp_width(8, u64::MAX).items().is_empty());
        assert!(check_stamp_width(2, 65535).items().is_empty());
    }

    #[test]
    fn certificate_json_round_trips() {
        let (cert, _) = fig4_cert(8);
        let cert = cert.unwrap();
        let json = frame_cert_to_json(&cert);
        let parsed = frame_cert_from_json(&json).unwrap();
        assert_eq!(parsed, cert);
        // The encoded form pins the layout the codec compiled against.
        let rendered = json.render();
        assert!(rendered.contains("\"stamp_seq\""), "{rendered}");
        assert!(rendered.contains("\"variants\""), "{rendered}");
        // Version gate.
        let wrong = rendered.replace("\"schema_version\":1", "\"schema_version\":9");
        let err = frame_cert_from_json(&Json::parse(&wrong).unwrap()).unwrap_err();
        assert!(err.contains("schema_version 9"), "{err}");
    }
}
