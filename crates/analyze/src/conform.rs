//! Trace conformance: check a measured run against a [`Certificate`].
//!
//! The closing move of the §4 story — "theoretical performance analysis
//! corresponds to real performance measurements" — made mechanical.
//! Given a certificate from [`mod@crate::certify`] and a `wsn-obs` JSONL
//! [`TraceDocument`] recorded by the runtime, every certified quantity
//! is located in the trace (by name and record kind) and tested against
//! its interval. Any escape is an error-severity `TC0xx` diagnostic:
//! the run, the cost model, or the certifier is lying, and the
//! experiment harness fails loudly instead of publishing drifted
//! numbers.

use crate::certify::{BoundKind, Certificate};
use crate::diag::{Code, Diagnostic, Diagnostics, Span};
use wsn_obs::TraceDocument;

/// Checks `doc` against `cert`. Returns the (sorted) `TC0xx` findings;
/// an empty report means the measured run is inside every certified
/// bound.
pub fn check_conformance(cert: &Certificate, doc: &TraceDocument) -> Diagnostics {
    let mut diags = Diagnostics::new();

    match &doc.meta {
        None => diags.push(
            Diagnostic::error(
                Code::TC007,
                Span::Program,
                "trace has no meta record; cannot establish it measures the certified \
                 deployment"
                    .to_owned(),
            )
            .with_suggestion("re-record with wsn-obs tracing enabled end to end"),
        ),
        Some(meta) if meta.grid != u64::from(cert.side) => diags.push(
            Diagnostic::error(
                Code::TC007,
                Span::Program,
                format!(
                    "trace measures a side-{} grid but the certificate prices side {}",
                    meta.grid, cert.side
                ),
            )
            .with_suggestion("certify at the trace's grid side"),
        ),
        Some(_) => {}
    }

    for bound in &cert.bounds {
        let name = bound.quantity.as_str();
        let iv = bound.interval;
        match bound.kind {
            BoundKind::Counter => {
                let Some((_, v)) = doc.counters.iter().find(|(n, _)| n == name) else {
                    diags.push(missing(name));
                    continue;
                };
                let v = *v as f64;
                if v < iv.lo && !iv.contains(v) {
                    diags.push(escape(Code::TC001, name, v, "below", iv.lo, bound));
                } else if !iv.contains(v) {
                    diags.push(escape(Code::TC002, name, v, "above", iv.hi, bound));
                }
            }
            BoundKind::Gauge => {
                let Some((_, v)) = doc.gauges.iter().find(|(n, _)| n == name) else {
                    diags.push(missing(name));
                    continue;
                };
                if !iv.contains(*v) {
                    // All certified gauges are per-class transmit
                    // energies; an escape in either direction is the
                    // energy-drift finding.
                    diags.push(
                        Diagnostic::error(
                            Code::TC006,
                            Span::Metric(name.to_owned()),
                            format!(
                                "measured {name} = {v} escapes the certified interval \
                                 {iv} ({})",
                                bound.symbolic
                            ),
                        )
                        .with_suggestion(
                            "the runtime's radio energy pricing diverges from the certified \
                             cost model",
                        ),
                    );
                }
            }
            BoundKind::SpanTicks => {
                let Some(span) = doc.spans.iter().find(|s| s.name == name) else {
                    diags.push(missing(name));
                    continue;
                };
                let dur = (span.end - span.start) as f64;
                if !iv.contains(dur) {
                    diags.push(
                        Diagnostic::error(
                            Code::TC004,
                            Span::Phase(name.to_owned()),
                            format!(
                                "phase {name:?} ran for {dur} ticks, outside the certified \
                                 latency interval {iv}"
                            ),
                        )
                        .with_suggestion(
                            "a hop-cost (ticks-per-unit) mismatch between the runtime radio \
                             and the certified cost model is the usual cause",
                        ),
                    );
                }
            }
            BoundKind::HistCount => {
                let Some((_, h)) = doc.histograms.iter().find(|(n, _)| n == name) else {
                    diags.push(missing(name));
                    continue;
                };
                let count = h.count() as f64;
                if !iv.contains(count) {
                    diags.push(
                        Diagnostic::error(
                            Code::TC005,
                            Span::Metric(name.to_owned()),
                            format!(
                                "{name} completed {count} merges but the hierarchy certifies \
                                 {iv}"
                            ),
                        )
                        .with_suggestion(
                            "merges were lost or duplicated: check quorum wiring and churn",
                        ),
                    );
                }
            }
        }
    }

    // TC008: cross-check the causal layer's critical path. The path is
    // an *exact* quantity — its telescoped segment sum must equal the
    // measured application span, and its length must sit inside the same
    // certified latency interval TC004 checks the span against. A trace
    // without causal records skips this (older recordings, control-only
    // runs); one *with* records has no excuse.
    if !doc.causal.is_empty() {
        match wsn_obs::extract_critical_path(&doc.causal) {
            Err(e) => diags.push(
                Diagnostic::error(
                    Code::TC008,
                    Span::Phase("application".to_owned()),
                    format!("trace carries causal records but no critical path: {e}"),
                )
                .with_suggestion(
                    "enable causal tracing before run_application so the exfiltration chain \
                     is recorded end to end",
                ),
            ),
            Ok(path) => {
                if let Some(span) = doc.spans.iter().find(|s| s.name == "application") {
                    let dur = span.end - span.start;
                    if path.start != span.start || path.end != span.end || path.segment_sum() != dur
                    {
                        diags.push(
                            Diagnostic::error(
                                Code::TC008,
                                Span::Phase("application".to_owned()),
                                format!(
                                    "critical path {}..{} (segments sum {}) does not telescope \
                                     to the application span {}..{} ({dur} ticks)",
                                    path.start,
                                    path.end,
                                    path.segment_sum(),
                                    span.start,
                                    span.end
                                ),
                            )
                            .with_suggestion(
                                "a lost deliver record or a chain broken across hops breaks \
                                 exactness; check the causal hooks on every send path",
                            ),
                        );
                    }
                }
                if let Some(bound) = cert
                    .bounds
                    .iter()
                    .find(|b| b.kind == BoundKind::SpanTicks && b.quantity == "application")
                {
                    let total = path.total_ticks() as f64;
                    if !bound.interval.contains(total) {
                        diags.push(
                            Diagnostic::error(
                                Code::TC008,
                                Span::Phase("application".to_owned()),
                                format!(
                                    "critical path length {total} ticks escapes the certified \
                                     latency interval {} ({})",
                                    bound.interval, bound.symbolic
                                ),
                            )
                            .with_suggestion(
                                "the latency-determining chain is mispriced: compare per-hop \
                                 flight ticks against the certified cost model",
                            ),
                        );
                    }
                }
            }
        }
    }

    diags.sort();
    diags
}

fn missing(name: &str) -> Diagnostic {
    Diagnostic::error(
        Code::TC003,
        Span::Metric(name.to_owned()),
        format!("certified quantity {name:?} is absent from the trace"),
    )
    .with_suggestion("record the trace with telemetry enabled (the runtime emits it by default)")
}

fn escape(
    code: Code,
    name: &str,
    v: f64,
    dir: &str,
    edge: f64,
    bound: &crate::certify::CertifiedBound,
) -> Diagnostic {
    Diagnostic::error(
        code,
        Span::Metric(name.to_owned()),
        format!(
            "measured {name} = {v} is {dir} the certified bound {edge} ({})",
            bound.symbolic
        ),
    )
    .with_suggestion("the runtime and the certified cost model disagree; recalibrate one of them")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify::{certify, CertConfig, Interval};
    use wsn_obs::{FixedHistogram, SpanNode, TraceDocument, TraceMeta};
    use wsn_sim::SimTime;
    use wsn_synth::synthesize_quadtree_program;

    fn paper_cert(side: u32) -> Certificate {
        let depth = u8::try_from(side.trailing_zeros()).unwrap();
        let (cert, diags) = certify(
            &synthesize_quadtree_program(depth),
            &CertConfig::paper(side),
        );
        assert_eq!(diags.error_count(), 0, "{}", diags.render_text());
        cert
    }

    /// A hand-built trace that sits exactly on the measured values of
    /// the seeded side-4 model-fidelity run.
    fn faithful_trace() -> TraceDocument {
        let mut doc = TraceDocument::new();
        doc.meta = Some(TraceMeta {
            grid: 4,
            seed: 5,
            nodes: 48,
            total_ticks: 36,
            events: 5281,
            ..TraceMeta::default()
        });
        doc.counters = vec![
            ("net.messages".into(), 20),
            ("net.data_units".into(), 52),
            ("phase.app.physical_hops".into(), 33),
            ("phase.app.retransmissions".into(), 0),
            ("phase.app.exfiltrations".into(), 1),
        ];
        doc.gauges = vec![
            ("phase.app.tx_energy.class0".into(), 52.0),
            ("phase.app.tx_energy.class1".into(), 26.0),
            ("phase.app.tx_energy.class2".into(), 21.0),
        ];
        let mut h1 = FixedHistogram::new(&[16.0, 64.0]);
        for _ in 0..4 {
            h1.record(10.0);
        }
        let mut h2 = FixedHistogram::new(&[16.0, 64.0]);
        h2.record(36.0);
        doc.histograms = vec![
            ("merge.level1.complete".into(), h1),
            ("merge.level2.complete".into(), h2),
        ];
        doc.spans = vec![SpanNode {
            name: "application".into(),
            start: SimTime::from_ticks(5),
            end: SimTime::from_ticks(36),
            events: 0,
            children: vec![],
        }];
        doc
    }

    #[test]
    fn faithful_trace_conforms() {
        let d = check_conformance(&paper_cert(4), &faithful_trace());
        assert!(d.is_empty(), "{}", d.render_text());
    }

    #[test]
    fn hop_cost_drift_is_tc004() {
        let mut doc = faithful_trace();
        // The mutated runtime (ticks-per-unit doubled behind the
        // certifier's back) stretches the application span to 62 ticks.
        doc.spans[0].end = SimTime::from_ticks(5 + 62);
        let d = check_conformance(&paper_cert(4), &doc);
        assert!(d.has_code(Code::TC004), "{}", d.render_text());
        assert!(d.has_errors());
    }

    #[test]
    fn energy_drift_is_tc006() {
        let mut doc = faithful_trace();
        doc.gauges[2].1 *= 2.0; // class2 transmit energy doubled
        let d = check_conformance(&paper_cert(4), &doc);
        assert!(d.has_code(Code::TC006), "{}", d.render_text());
    }

    #[test]
    fn absent_quantity_is_tc003_and_out_of_interval_counters_split_by_direction() {
        let mut doc = faithful_trace();
        doc.counters.retain(|(n, _)| n != "net.messages");
        let d = check_conformance(&paper_cert(4), &doc);
        assert!(d.has_code(Code::TC003), "{}", d.render_text());

        let mut doc = faithful_trace();
        for (n, v) in &mut doc.counters {
            if n == "net.data_units" {
                *v = 1; // below the unit-payload floor of 20
            }
            if n == "phase.app.physical_hops" {
                *v = 1000;
            }
        }
        let d = check_conformance(&paper_cert(4), &doc);
        assert!(d.has_code(Code::TC001), "{}", d.render_text());
        assert!(d.has_code(Code::TC002), "{}", d.render_text());
    }

    #[test]
    fn merge_count_mismatch_is_tc005_and_wrong_grid_is_tc007() {
        let mut doc = faithful_trace();
        let mut h = FixedHistogram::new(&[16.0, 64.0]);
        h.record(10.0); // only one level-1 merge completed
        doc.histograms[0].1 = h;
        let d = check_conformance(&paper_cert(4), &doc);
        assert!(d.has_code(Code::TC005), "{}", d.render_text());

        let mut doc = faithful_trace();
        doc.meta.as_mut().unwrap().grid = 8;
        let d = check_conformance(&paper_cert(4), &doc);
        assert!(d.has_code(Code::TC007), "{}", d.render_text());
    }

    /// Attaches a minimal exact causal chain spanning the application
    /// span (5..36): start -> hop send -> delivery -> exfiltration.
    fn attach_exact_chain(doc: &mut TraceDocument) {
        let mut log = wsn_sim::CausalLog::new();
        let root = log.record_local(0, SimTime::from_ticks(5), 0, "app.start");
        let s = log.record_send(0, SimTime::from_ticks(5), root, "app.hop", 2);
        let d = log.record_deliver(1, SimTime::from_ticks(36), s, "app.hop", 2);
        log.record_local(1, SimTime::from_ticks(36), d, "app.exfil");
        doc.causal = log.into_events();
    }

    #[test]
    fn exact_critical_path_passes_tc008() {
        let mut doc = faithful_trace();
        attach_exact_chain(&mut doc);
        let d = check_conformance(&paper_cert(4), &doc);
        assert!(d.is_empty(), "{}", d.render_text());
    }

    #[test]
    fn critical_path_span_disagreement_is_tc008() {
        let mut doc = faithful_trace();
        attach_exact_chain(&mut doc);
        // The chain ends before the measured span does: exactness broken.
        doc.causal[2].time = SimTime::from_ticks(30);
        doc.causal[3].time = SimTime::from_ticks(30);
        let d = check_conformance(&paper_cert(4), &doc);
        assert!(d.has_code(Code::TC008), "{}", d.render_text());
    }

    #[test]
    fn critical_path_outside_certified_latency_is_tc008() {
        let mut doc = faithful_trace();
        attach_exact_chain(&mut doc);
        // Span and chain agree with each other but both escape the
        // certificate: TC004 (span) and TC008 (path) fire together.
        doc.spans[0].end = SimTime::from_ticks(80);
        doc.causal[2].time = SimTime::from_ticks(80);
        doc.causal[3].time = SimTime::from_ticks(80);
        let d = check_conformance(&paper_cert(4), &doc);
        assert!(d.has_code(Code::TC004), "{}", d.render_text());
        assert!(d.has_code(Code::TC008), "{}", d.render_text());
    }

    #[test]
    fn causal_records_without_an_exfiltration_are_tc008() {
        let mut doc = faithful_trace();
        let mut log = wsn_sim::CausalLog::new();
        log.record_local(0, SimTime::from_ticks(5), 0, "app.start");
        doc.causal = log.into_events();
        let d = check_conformance(&paper_cert(4), &doc);
        assert!(d.has_code(Code::TC008), "{}", d.render_text());
    }

    #[test]
    fn interval_display_and_containment() {
        let iv = Interval { lo: 2.0, hi: 5.0 };
        assert!(iv.contains(2.0) && iv.contains(5.0) && !iv.contains(5.1));
        assert_eq!(iv.to_string(), "[2, 5]");
        assert_eq!(Interval::exact(3.0).to_string(), "= 3");
    }
}
