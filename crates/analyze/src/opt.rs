//! Dataflow optimizer passes over the program IR.
//!
//! Three classic passes, run for their *facts* as much as for the
//! rewritten program: the symbolic cost certifier
//! ([`mod@crate::certify`]) consumes them to sharpen its bounds — a dead
//! handler's sends cost nothing, a redundant retransmit doubles a
//! message budget, a constant-true guard collapses a conditional branch.
//!
//! 1. **Constant propagation** — a scalar variable whose initializer is a
//!    literal and whose every assignment (re-)establishes the same
//!    literal is a constant; guards are partially evaluated under the
//!    resulting environment. The runtime-flipped `start` trigger is
//!    exempt (the harness writes it behind the program's back, §5.2).
//! 2. **Dead-handler elimination** — rules whose guard folds to `false`
//!    (directly, or because a literal `msgsReceived` index can never be
//!    incremented) can never fire and are removed.
//! 3. **Redundant-retransmit detection** — two syntactically identical
//!    `send`/`exfiltrate` actions in the same straight-line action run
//!    (no intervening state change) provably ship the same summary
//!    twice; the duplicate is dropped from the optimized program.

use crate::diag::{Code, Diagnostic, Diagnostics, Span};
use std::collections::BTreeMap;
use wsn_synth::{Action, Expr, Guard, GuardedProgram, Rule};

/// Constant-propagation verdict for one variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Provably this literal in every reachable state.
    Const(i64),
    /// Not provably constant.
    Top,
}

/// What the optimizer learned; the certifier's input.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptFacts {
    /// Per-variable constant verdicts (booleans as 0/1).
    pub consts: BTreeMap<String, AbsVal>,
    /// Indices (into the *original* rule list) of provably-dead rules.
    pub dead_rules: Vec<usize>,
    /// `(rule, action path)` of each provably-redundant duplicate send.
    pub redundant_sends: Vec<(usize, Vec<usize>)>,
    /// Indices of rules whose guard folds to constant `true`.
    pub always_true_guards: Vec<usize>,
}

impl OptFacts {
    /// Live `SendSummaryToLeader` sites after dead-rule elimination and
    /// redundant-send removal — the certifier's per-merge send
    /// multiplicity evidence.
    pub fn live_send_sites(&self, p: &GuardedProgram) -> usize {
        p.rules
            .iter()
            .enumerate()
            .filter(|(r, _)| !self.dead_rules.contains(r))
            .map(|(r, rule)| count_sends(&rule.actions, r, &mut Vec::new(), &self.redundant_sends))
            .sum()
    }
}

fn count_sends(
    actions: &[Action],
    rule: usize,
    path: &mut Vec<usize>,
    redundant: &[(usize, Vec<usize>)],
) -> usize {
    let mut n = 0;
    for (i, a) in actions.iter().enumerate() {
        path.push(i);
        match a {
            Action::SendSummaryToLeader { .. }
                if !redundant.iter().any(|(r, p)| *r == rule && p == path) =>
            {
                n += 1;
            }
            Action::IfElse {
                then, otherwise, ..
            } => {
                // A conditional executes one branch; count the worst case.
                path.push(0);
                let t = count_sends(then, rule, path, redundant);
                path.pop();
                path.push(1);
                let e = count_sends(otherwise, rule, path, redundant);
                path.pop();
                n += t.max(e);
            }
            _ => {}
        }
        path.pop();
    }
    n
}

/// Runs all three passes. Returns the optimized program, the facts, and
/// the `CC003`/`CC004`/`CC005` diagnostics describing what was found.
pub fn optimize_program(p: &GuardedProgram) -> (GuardedProgram, OptFacts, Diagnostics) {
    let mut diags = Diagnostics::new();
    let consts = propagate_constants(p);

    // Pass 2: dead handlers.
    let mut dead_rules = Vec::new();
    let mut always_true_guards = Vec::new();
    for (r, rule) in p.rules.iter().enumerate() {
        match fold_guard(&rule.guard, &consts, p.max_level) {
            Some(false) => {
                dead_rules.push(r);
                diags.push(
                    Diagnostic::info(
                        Code::CC003,
                        Span::Rule {
                            rule: r,
                            label: rule.label.clone(),
                        },
                        format!(
                            "guard of rule {:?} is provably false; the handler is dead and its \
                             sends are excluded from the certified bounds",
                            rule.label
                        ),
                    )
                    .with_suggestion("delete the rule or fix the guard's constant operands"),
                );
            }
            Some(true) => {
                always_true_guards.push(r);
                diags.push(Diagnostic::info(
                    Code::CC005,
                    Span::Rule {
                        rule: r,
                        label: rule.label.clone(),
                    },
                    format!(
                        "guard of rule {:?} folds to constant true under propagated constants; \
                         the rule fires on every scan",
                        rule.label
                    ),
                ));
            }
            None => {}
        }
    }

    // Pass 3: redundant retransmits (only in live rules).
    let mut redundant_sends = Vec::new();
    for (r, rule) in p.rules.iter().enumerate() {
        if dead_rules.contains(&r) {
            continue;
        }
        find_redundant(&rule.actions, r, &mut Vec::new(), &mut redundant_sends);
    }
    for (r, path) in &redundant_sends {
        diags.push(
            Diagnostic::warning(
                Code::CC004,
                Span::Action {
                    rule: *r,
                    path: path.clone(),
                },
                "duplicate send of the same summary with no intervening state change: a \
                 provably-redundant retransmit"
                    .to_owned(),
            )
            .with_suggestion("remove the duplicate; the first transmission already ships it"),
        );
    }

    let facts = OptFacts {
        consts,
        dead_rules,
        redundant_sends,
        always_true_guards,
    };
    let optimized = rewrite(p, &facts);
    (optimized, facts, diags)
}

/// Constant propagation to a fixpoint over every assignment site.
fn propagate_constants(p: &GuardedProgram) -> BTreeMap<String, AbsVal> {
    let mut env: BTreeMap<String, AbsVal> = BTreeMap::new();
    for d in &p.state {
        // The runtime flips `start` externally; it is never constant.
        let v = if d.name == "start" {
            AbsVal::Top
        } else {
            match eval_expr(&d.init, &env) {
                Some(v) => AbsVal::Const(v),
                None => AbsVal::Top,
            }
        };
        env.insert(d.name.clone(), v);
    }
    loop {
        let mut changed = false;
        for rule in &p.rules {
            demote_assignments(&rule.actions, &mut env, &mut changed);
        }
        if !changed {
            return env;
        }
    }
}

fn demote_assignments(actions: &[Action], env: &mut BTreeMap<String, AbsVal>, changed: &mut bool) {
    for a in actions {
        match a {
            Action::Set(name, e) => {
                let cur = env.get(name).copied().unwrap_or(AbsVal::Top);
                if let AbsVal::Const(c) = cur {
                    let keeps = matches!(eval_expr(e, env), Some(v) if v == c);
                    if !keeps {
                        env.insert(name.clone(), AbsVal::Top);
                        *changed = true;
                    }
                }
            }
            Action::IfElse {
                then, otherwise, ..
            } => {
                demote_assignments(then, env, changed);
                demote_assignments(otherwise, env, changed);
            }
            _ => {}
        }
    }
}

/// Partial evaluation of an expression under constant facts.
fn eval_expr(e: &Expr, env: &BTreeMap<String, AbsVal>) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Bool(b) => Some(i64::from(*b)),
        Expr::Var(name) => match env.get(name) {
            Some(AbsVal::Const(v)) => Some(*v),
            _ => None,
        },
        Expr::Add(a, b) => Some(eval_expr(a, env)?.checked_add(eval_expr(b, env)?)?),
        Expr::Sub(a, b) => Some(eval_expr(a, env)?.checked_sub(eval_expr(b, env)?)?),
        Expr::MsgsReceivedAt(_) => None,
    }
}

/// Three-valued guard folding. `Some(false)` proves the guard can never
/// hold; `Some(true)` proves it always holds on scan.
fn fold_guard(g: &Guard, env: &BTreeMap<String, AbsVal>, max_level: u8) -> Option<bool> {
    match g {
        Guard::Eq(a, b) => {
            // A literal msgsReceived index outside the level range is
            // never incremented: its count is identically zero.
            for (idx_side, k_side) in [(a, b), (b, a)] {
                if let Expr::MsgsReceivedAt(idx) = idx_side {
                    if let Some(i) = eval_expr(idx, env) {
                        if (i < 0 || i > i64::from(max_level))
                            && matches!(eval_expr(k_side, env), Some(k) if k != 0)
                        {
                            return Some(false);
                        }
                    }
                }
            }
            match (eval_expr(a, env), eval_expr(b, env)) {
                (Some(x), Some(y)) => Some(x == y),
                _ => None,
            }
        }
        Guard::Received | Guard::IncomingFromSelf => None,
        Guard::And(a, b) => match (fold_guard(a, env, max_level), fold_guard(b, env, max_level)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
    }
}

/// Flags the second of two syntactically identical sends in the same
/// straight-line run. Any other action resets the window (it may change
/// the shipped summary or the routing state).
fn find_redundant(
    actions: &[Action],
    rule: usize,
    path: &mut Vec<usize>,
    out: &mut Vec<(usize, Vec<usize>)>,
) {
    let mut window: Vec<&Action> = Vec::new();
    for (i, a) in actions.iter().enumerate() {
        path.push(i);
        match a {
            Action::SendSummaryToLeader { .. } | Action::ExfiltrateSummary { .. } => {
                if window.contains(&a) {
                    out.push((rule, path.clone()));
                } else {
                    window.push(a);
                }
            }
            Action::IfElse {
                then, otherwise, ..
            } => {
                window.clear();
                path.push(0);
                find_redundant(then, rule, path, out);
                path.pop();
                path.push(1);
                find_redundant(otherwise, rule, path, out);
                path.pop();
            }
            _ => window.clear(),
        }
        path.pop();
    }
}

/// Applies the facts: drops dead rules and redundant duplicate sends.
fn rewrite(p: &GuardedProgram, facts: &OptFacts) -> GuardedProgram {
    let mut out = p.clone();
    out.rules = p
        .rules
        .iter()
        .enumerate()
        .filter(|(r, _)| !facts.dead_rules.contains(r))
        .map(|(r, rule)| Rule {
            label: rule.label.clone(),
            guard: rule.guard.clone(),
            actions: strip_redundant(&rule.actions, r, &mut Vec::new(), &facts.redundant_sends),
        })
        .collect();
    out
}

fn strip_redundant(
    actions: &[Action],
    rule: usize,
    path: &mut Vec<usize>,
    redundant: &[(usize, Vec<usize>)],
) -> Vec<Action> {
    let mut out = Vec::new();
    for (i, a) in actions.iter().enumerate() {
        path.push(i);
        let drop = redundant.iter().any(|(r, p)| *r == rule && p == path);
        if !drop {
            out.push(match a {
                Action::IfElse {
                    cond,
                    then,
                    otherwise,
                } => {
                    path.push(0);
                    let t = strip_redundant(then, rule, path, redundant);
                    path.pop();
                    path.push(1);
                    let e = strip_redundant(otherwise, rule, path, redundant);
                    path.pop();
                    Action::IfElse {
                        cond: cond.clone(),
                        then: t,
                        otherwise: e,
                    }
                }
                other => other.clone(),
            });
        }
        path.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_synth::synthesize_quadtree_program;

    #[test]
    fn figure4_is_already_optimal() {
        let p = synthesize_quadtree_program(2);
        let (opt, facts, diags) = optimize_program(&p);
        assert_eq!(opt, p, "no rewrites on the paper's program");
        assert!(facts.dead_rules.is_empty());
        assert!(facts.redundant_sends.is_empty());
        assert!(diags.is_empty(), "{}", diags.render_text());
        // maxrecLevel is the one genuine constant; start is exempt.
        assert_eq!(facts.consts.get("maxrecLevel"), Some(&AbsVal::Const(2)));
        assert_eq!(facts.consts.get("start"), Some(&AbsVal::Top));
        assert_eq!(facts.consts.get("transmit"), Some(&AbsVal::Top));
        assert_eq!(facts.live_send_sites(&p), 1);
    }

    #[test]
    fn dead_handler_is_eliminated_with_cc003() {
        let mut p = synthesize_quadtree_program(2);
        p.rules.push(Rule {
            label: "never".into(),
            guard: Guard::Eq(Expr::var("maxrecLevel"), Expr::Int(99)),
            actions: vec![Action::SendSummaryToLeader {
                group_level: Expr::Int(1),
                data_level: Expr::Int(0),
            }],
        });
        let (opt, facts, diags) = optimize_program(&p);
        assert_eq!(facts.dead_rules, vec![4]);
        assert!(diags.has_code(Code::CC003), "{}", diags.render_text());
        assert_eq!(opt.rules.len(), 4);
        // The dead send does not count as a live site.
        assert_eq!(facts.live_send_sites(&p), 1);
    }

    #[test]
    fn out_of_range_quorum_index_is_dead() {
        let mut p = synthesize_quadtree_program(2);
        p.rules.push(Rule {
            label: "phantom".into(),
            guard: Guard::Eq(Expr::MsgsReceivedAt(Box::new(Expr::Int(7))), Expr::Int(3)),
            actions: vec![],
        });
        let (_, facts, _) = optimize_program(&p);
        assert_eq!(facts.dead_rules, vec![4]);
    }

    #[test]
    fn duplicate_send_is_flagged_and_stripped() {
        let mut p = synthesize_quadtree_program(1);
        let send = Action::SendSummaryToLeader {
            group_level: Expr::var("recLevel"),
            data_level: Expr::var("recLevel").minus(1),
        };
        p.rules.push(Rule {
            label: "chatty".into(),
            guard: Guard::Eq(Expr::var("transmit"), Expr::Bool(true)),
            actions: vec![send.clone(), send.clone()],
        });
        let (opt, facts, diags) = optimize_program(&p);
        assert_eq!(facts.redundant_sends, vec![(4, vec![1])]);
        assert!(diags.has_code(Code::CC004), "{}", diags.render_text());
        assert_eq!(opt.rules[4].actions.len(), 1);
        // One canonical site + one (deduplicated) chatty site.
        assert_eq!(facts.live_send_sites(&p), 2);
    }

    #[test]
    fn intervening_state_change_defeats_redundancy() {
        let mut p = synthesize_quadtree_program(1);
        let send = Action::SendSummaryToLeader {
            group_level: Expr::Int(1),
            data_level: Expr::Int(0),
        };
        p.rules.push(Rule {
            label: "resend-after-merge".into(),
            guard: Guard::Eq(Expr::var("transmit"), Expr::Bool(true)),
            actions: vec![send.clone(), Action::MergeIncoming, send.clone()],
        });
        let (_, facts, _) = optimize_program(&p);
        assert!(facts.redundant_sends.is_empty());
    }

    #[test]
    fn constant_true_guard_reports_cc005() {
        let mut p = synthesize_quadtree_program(1);
        p.rules.push(Rule {
            label: "busy".into(),
            guard: Guard::Eq(Expr::var("maxrecLevel"), Expr::Int(1)),
            actions: vec![],
        });
        let (_, facts, diags) = optimize_program(&p);
        assert_eq!(facts.always_true_guards, vec![4]);
        assert!(diags.has_code(Code::CC005), "{}", diags.render_text());
    }

    #[test]
    fn reassigned_constant_demotes_to_top() {
        let mut p = synthesize_quadtree_program(1);
        p.rules[0]
            .actions
            .push(Action::Set("maxrecLevel".into(), Expr::Int(9)));
        let (_, facts, _) = optimize_program(&p);
        assert_eq!(facts.consts.get("maxrecLevel"), Some(&AbsVal::Top));
    }
}
