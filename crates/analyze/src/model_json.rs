//! A stable JSON encoding of [`GuardedProgram`], so `wsn-lint` can
//! analyze programs that did not come out of this process's synthesizer
//! (fixtures, hand-written variants, programs produced by other tools).
//!
//! The encoding is structural and self-describing:
//!
//! ```json
//! {
//!   "name": "...", "max_level": 2,
//!   "state": [{"name": "start", "init": {"bool": false}}],
//!   "rules": [{"label": "...", "guard": {"eq": [..]}, "actions": [..]}]
//! }
//! ```
//!
//! Expressions are `{"int": v}`, `{"bool": b}`, `{"var": "x"}`,
//! `{"add": [a, b]}`, `{"sub": [a, b]}`, `{"msgs_received_at": e}`;
//! guards are `"received"`, `"incoming_from_self"`, `{"eq": [a, b]}`,
//! `{"and": [g, h]}`; actions are `"compute_local_summary"`,
//! `"merge_incoming"`, `"count_incoming"`, `{"set": ["x", e]}`,
//! `{"if": {"cond": g, "then": [...], "else": [...]}}`,
//! `{"send_summary_to_leader": {"group_level": e, "data_level": e}}`,
//! `{"exfiltrate_summary": {"level": e}}`.

use wsn_obs::Json;
use wsn_synth::{Action, Expr, Guard, GuardedProgram, Rule, StateDecl};

/// The program-model schema this encoder emits and this decoder
/// understands. Bumped on any incompatible encoding change; decoding a
/// different version is a clear error, not a misparse.
pub const PROGRAM_SCHEMA_VERSION: u64 = 1;

/// Encodes a program into the JSON model.
pub fn program_to_json(p: &GuardedProgram) -> Json {
    Json::Obj(vec![
        (
            "schema_version".to_owned(),
            Json::from_u64(PROGRAM_SCHEMA_VERSION),
        ),
        ("name".to_owned(), Json::Str(p.name.clone())),
        (
            "max_level".to_owned(),
            Json::from_u64(u64::from(p.max_level)),
        ),
        (
            "state".to_owned(),
            Json::Arr(
                p.state
                    .iter()
                    .map(|d| {
                        Json::Obj(vec![
                            ("name".to_owned(), Json::Str(d.name.clone())),
                            ("init".to_owned(), expr_to_json(&d.init)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "rules".to_owned(),
            Json::Arr(
                p.rules
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("label".to_owned(), Json::Str(r.label.clone())),
                            ("guard".to_owned(), guard_to_json(&r.guard)),
                            (
                                "actions".to_owned(),
                                Json::Arr(r.actions.iter().map(action_to_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a program from the JSON model, with a path-bearing message on
/// malformed input.
pub fn program_from_json(j: &Json) -> Result<GuardedProgram, String> {
    // Pre-versioning documents carry no schema_version; they are v1 by
    // construction. Anything else is rejected up front.
    if let Some(v) = j.get("schema_version") {
        let version = v
            .as_u64()
            .ok_or("program: 'schema_version' is not an integer")?;
        if version != PROGRAM_SCHEMA_VERSION {
            return Err(format!(
                "program: unsupported schema_version {version} (this decoder understands \
                 {PROGRAM_SCHEMA_VERSION}); re-emit with a matching wsn-lint"
            ));
        }
    }
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or("program: missing string field 'name'")?
        .to_owned();
    let max_level = j
        .get("max_level")
        .and_then(Json::as_u64)
        .ok_or("program: missing integer field 'max_level'")?;
    if max_level > 30 {
        return Err(format!(
            "program: max_level {max_level} out of range (0..=30)"
        ));
    }
    let mut state = Vec::new();
    for (i, d) in arr(j, "state")?.iter().enumerate() {
        let name = d
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("state[{i}]: missing string field 'name'"))?;
        let init = d
            .get("init")
            .ok_or_else(|| format!("state[{i}]: missing field 'init'"))
            .and_then(expr_from_json)?;
        state.push(StateDecl {
            name: name.to_owned(),
            init,
        });
    }
    let mut rules = Vec::new();
    for (i, r) in arr(j, "rules")?.iter().enumerate() {
        let label = r
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("rules[{i}]: missing string field 'label'"))?;
        let guard = r
            .get("guard")
            .ok_or_else(|| format!("rules[{i}]: missing field 'guard'"))
            .and_then(guard_from_json)?;
        let mut actions = Vec::new();
        for a in r
            .get("actions")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("rules[{i}]: missing array field 'actions'"))?
        {
            actions.push(action_from_json(a)?);
        }
        rules.push(Rule {
            label: label.to_owned(),
            guard,
            actions,
        });
    }
    Ok(GuardedProgram {
        name,
        max_level: max_level as u8,
        state,
        rules,
    })
}

fn arr<'j>(j: &'j Json, key: &str) -> Result<&'j [Json], String> {
    j.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("program: missing array field '{key}'"))
}

fn expr_to_json(e: &Expr) -> Json {
    match e {
        Expr::Int(v) => Json::Obj(vec![("int".to_owned(), Json::Num(*v as f64))]),
        Expr::Bool(b) => Json::Obj(vec![("bool".to_owned(), Json::Bool(*b))]),
        Expr::Var(name) => Json::Obj(vec![("var".to_owned(), Json::Str(name.clone()))]),
        Expr::Add(a, b) => Json::Obj(vec![(
            "add".to_owned(),
            Json::Arr(vec![expr_to_json(a), expr_to_json(b)]),
        )]),
        Expr::Sub(a, b) => Json::Obj(vec![(
            "sub".to_owned(),
            Json::Arr(vec![expr_to_json(a), expr_to_json(b)]),
        )]),
        Expr::MsgsReceivedAt(i) => {
            Json::Obj(vec![("msgs_received_at".to_owned(), expr_to_json(i))])
        }
    }
}

fn expr_from_json(j: &Json) -> Result<Expr, String> {
    if let Some(v) = j.get("int") {
        let f = v.as_f64().ok_or("expr: 'int' is not a number")?;
        return Ok(Expr::Int(f as i64));
    }
    if let Some(v) = j.get("bool") {
        return match v {
            Json::Bool(b) => Ok(Expr::Bool(*b)),
            _ => Err("expr: 'bool' is not a boolean".to_owned()),
        };
    }
    if let Some(v) = j.get("var") {
        return Ok(Expr::var(v.as_str().ok_or("expr: 'var' is not a string")?));
    }
    if let Some(v) = j.get("add") {
        let [a, b] = pair(v, "add")?;
        return Ok(Expr::Add(
            Box::new(expr_from_json(a)?),
            Box::new(expr_from_json(b)?),
        ));
    }
    if let Some(v) = j.get("sub") {
        let [a, b] = pair(v, "sub")?;
        return Ok(Expr::Sub(
            Box::new(expr_from_json(a)?),
            Box::new(expr_from_json(b)?),
        ));
    }
    if let Some(v) = j.get("msgs_received_at") {
        return Ok(Expr::MsgsReceivedAt(Box::new(expr_from_json(v)?)));
    }
    Err(format!("expr: unrecognized form {}", j.render()))
}

fn pair<'j>(j: &'j Json, what: &str) -> Result<[&'j Json; 2], String> {
    match j.as_arr() {
        Some([a, b]) => Ok([a, b]),
        _ => Err(format!("expr: '{what}' needs exactly two operands")),
    }
}

fn guard_to_json(g: &Guard) -> Json {
    match g {
        Guard::Received => Json::Str("received".to_owned()),
        Guard::IncomingFromSelf => Json::Str("incoming_from_self".to_owned()),
        Guard::Eq(a, b) => Json::Obj(vec![(
            "eq".to_owned(),
            Json::Arr(vec![expr_to_json(a), expr_to_json(b)]),
        )]),
        Guard::And(a, b) => Json::Obj(vec![(
            "and".to_owned(),
            Json::Arr(vec![guard_to_json(a), guard_to_json(b)]),
        )]),
    }
}

fn guard_from_json(j: &Json) -> Result<Guard, String> {
    match j.as_str() {
        Some("received") => return Ok(Guard::Received),
        Some("incoming_from_self") => return Ok(Guard::IncomingFromSelf),
        Some(other) => return Err(format!("guard: unknown tag {other:?}")),
        None => {}
    }
    if let Some(v) = j.get("eq") {
        let [a, b] = pair(v, "eq")?;
        return Ok(Guard::Eq(expr_from_json(a)?, expr_from_json(b)?));
    }
    if let Some(v) = j.get("and") {
        let [a, b] = pair(v, "and")?;
        return Ok(Guard::And(
            Box::new(guard_from_json(a)?),
            Box::new(guard_from_json(b)?),
        ));
    }
    Err(format!("guard: unrecognized form {}", j.render()))
}

fn action_to_json(a: &Action) -> Json {
    match a {
        Action::ComputeLocalSummary => Json::Str("compute_local_summary".to_owned()),
        Action::MergeIncoming => Json::Str("merge_incoming".to_owned()),
        Action::CountIncoming => Json::Str("count_incoming".to_owned()),
        Action::Set(name, e) => Json::Obj(vec![(
            "set".to_owned(),
            Json::Arr(vec![Json::Str(name.clone()), expr_to_json(e)]),
        )]),
        Action::IfElse {
            cond,
            then,
            otherwise,
        } => Json::Obj(vec![(
            "if".to_owned(),
            Json::Obj(vec![
                ("cond".to_owned(), guard_to_json(cond)),
                (
                    "then".to_owned(),
                    Json::Arr(then.iter().map(action_to_json).collect()),
                ),
                (
                    "else".to_owned(),
                    Json::Arr(otherwise.iter().map(action_to_json).collect()),
                ),
            ]),
        )]),
        Action::SendSummaryToLeader {
            group_level,
            data_level,
        } => Json::Obj(vec![(
            "send_summary_to_leader".to_owned(),
            Json::Obj(vec![
                ("group_level".to_owned(), expr_to_json(group_level)),
                ("data_level".to_owned(), expr_to_json(data_level)),
            ]),
        )]),
        Action::ExfiltrateSummary { level } => Json::Obj(vec![(
            "exfiltrate_summary".to_owned(),
            Json::Obj(vec![("level".to_owned(), expr_to_json(level))]),
        )]),
    }
}

fn action_from_json(j: &Json) -> Result<Action, String> {
    match j.as_str() {
        Some("compute_local_summary") => return Ok(Action::ComputeLocalSummary),
        Some("merge_incoming") => return Ok(Action::MergeIncoming),
        Some("count_incoming") => return Ok(Action::CountIncoming),
        Some(other) => return Err(format!("action: unknown tag {other:?}")),
        None => {}
    }
    if let Some(v) = j.get("set") {
        let [name, e] = pair(v, "set")?;
        let name = name
            .as_str()
            .ok_or("action: 'set' target is not a string")?;
        return Ok(Action::Set(name.to_owned(), expr_from_json(e)?));
    }
    if let Some(v) = j.get("if") {
        let cond = v
            .get("cond")
            .ok_or_else(|| "action: 'if' missing 'cond'".to_owned())
            .and_then(guard_from_json)?;
        let mut then = Vec::new();
        for a in v.get("then").and_then(Json::as_arr).unwrap_or(&[]) {
            then.push(action_from_json(a)?);
        }
        let mut otherwise = Vec::new();
        for a in v.get("else").and_then(Json::as_arr).unwrap_or(&[]) {
            otherwise.push(action_from_json(a)?);
        }
        return Ok(Action::IfElse {
            cond,
            then,
            otherwise,
        });
    }
    if let Some(v) = j.get("send_summary_to_leader") {
        let group_level = v
            .get("group_level")
            .ok_or_else(|| "action: send missing 'group_level'".to_owned())
            .and_then(expr_from_json)?;
        let data_level = v
            .get("data_level")
            .ok_or_else(|| "action: send missing 'data_level'".to_owned())
            .and_then(expr_from_json)?;
        return Ok(Action::SendSummaryToLeader {
            group_level,
            data_level,
        });
    }
    if let Some(v) = j.get("exfiltrate_summary") {
        let level = v
            .get("level")
            .ok_or_else(|| "action: exfiltrate missing 'level'".to_owned())
            .and_then(expr_from_json)?;
        return Ok(Action::ExfiltrateSummary { level });
    }
    Err(format!("action: unrecognized form {}", j.render()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_synth::{synthesize_gather_program, synthesize_quadtree_program};

    #[test]
    fn figure4_round_trips_through_json_text() {
        for depth in 1..=3 {
            let p = synthesize_quadtree_program(depth);
            let text = program_to_json(&p).render();
            let back = program_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, p, "depth {depth}");
        }
    }

    #[test]
    fn gather_round_trips() {
        let p = synthesize_gather_program(2, 4);
        let back = program_from_json(&program_to_json(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn schema_version_is_emitted_and_gates_decoding() {
        let p = synthesize_quadtree_program(2);
        let text = program_to_json(&p).render();
        assert!(text.contains("\"schema_version\":1"), "{text}");
        // Absent version: tolerated as v1 (pre-versioning documents).
        let legacy =
            Json::parse(r#"{"name": "x", "max_level": 0, "state": [], "rules": []}"#).unwrap();
        assert!(program_from_json(&legacy).is_ok());
        // Mismatched version: clear rejection.
        let future = Json::parse(
            r#"{"schema_version": 9, "name": "x", "max_level": 0, "state": [], "rules": []}"#,
        )
        .unwrap();
        let err = program_from_json(&future).unwrap_err();
        assert!(err.contains("unsupported schema_version 9"), "{err}");
        assert!(err.contains("understands 1"), "{err}");
    }

    #[test]
    fn malformed_input_yields_path_bearing_errors() {
        let missing = Json::parse(r#"{"name": "x"}"#).unwrap();
        assert!(program_from_json(&missing)
            .unwrap_err()
            .contains("max_level"));
        let bad_guard = Json::parse(
            r#"{"name": "x", "max_level": 1, "state": [], "rules":
               [{"label": "r", "guard": "sometimes", "actions": []}]}"#,
        )
        .unwrap();
        assert!(program_from_json(&bad_guard)
            .unwrap_err()
            .contains("sometimes"));
    }
}
