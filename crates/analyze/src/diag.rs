//! The structured diagnostic model every analysis pass reports through.
//!
//! A [`Diagnostic`] is a severity, a stable machine-readable [`Code`], a
//! [`Span`] pointing into the analyzed IR (a rule, an action path, a task,
//! an edge, a node…), a human message, and an optional suggested fix.
//! [`Diagnostics`] collects them across passes and renders the batch as
//! aligned text for terminals or as JSON (via `wsn_obs::Json`) for tools.

use std::fmt;
use wsn_core::GridCoord;
use wsn_obs::Json;
use wsn_synth::TaskId;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note (analysis limits, observations).
    Info,
    /// Suspicious but not certainly broken; the program still runs.
    Warning,
    /// The artifact will panic, hang, or violate a design constraint at
    /// runtime; codegen refuses it unless overridden.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes, grouped by pass.
///
/// * `WF` — program well-formedness (declarations, receive-only actions,
///   index bounds);
/// * `RD` — reachability and determinism of the rule system;
/// * `GM` — task-graph and mapping structure;
/// * `DL` — cross-node deadlock;
/// * `CB` — cost-budget conformance;
/// * `CC` — cost certification (symbolic §4 bounds and the optimizer
///   facts that sharpen them);
/// * `SI` — shard interference (footprint and commutativity of handlers
///   under a quad-tree shard plan);
/// * `FL` — frame layout (every reachable send site fits the fixed wire
///   frame at its certified offsets);
/// * `AL` — allocation discipline (runtime state on the certified hot
///   path is arena-allocatable, not per-event heap);
/// * `TC` — trace conformance (measured run vs certified interval).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // variants are documented by Self::description
pub enum Code {
    WF001,
    WF002,
    WF003,
    WF004,
    WF005,
    WF006,
    WF007,
    WF008,
    WF009,
    WF010,
    RD001,
    RD002,
    RD003,
    RD004,
    GM001,
    GM002,
    GM003,
    GM004,
    GM005,
    DL001,
    DL002,
    CB001,
    CB002,
    CB003,
    CB004,
    CC001,
    CC002,
    CC003,
    CC004,
    CC005,
    SI001,
    SI002,
    SI003,
    SI004,
    FL001,
    FL002,
    FL003,
    FL004,
    FL005,
    AL001,
    AL002,
    AL003,
    TC001,
    TC002,
    TC003,
    TC004,
    TC005,
    TC006,
    TC007,
    TC008,
    TC009,
    TC010,
}

impl Code {
    /// One-line description of what the code means (the lint catalog).
    pub fn description(self) -> &'static str {
        match self {
            Code::WF001 => "duplicate state-variable declaration",
            Code::WF002 => "reference to an undeclared state variable",
            Code::WF003 => "assignment to an undeclared state variable",
            Code::WF004 => "receive-only construct in a state rule",
            Code::WF005 => "non-constant state initializer",
            Code::WF006 => "msgsReceived index escapes the program's level range",
            Code::WF007 => "summary level escapes 0..=maxrecLevel",
            Code::WF008 => "program lacks the runtime 'start' trigger flag",
            Code::WF009 => "duplicate rule label",
            Code::WF010 => "summary slot read before any write (absent summary)",
            Code::RD001 => "rule guard unsatisfiable from the initial environment",
            Code::RD002 => "overlapping guards make rule scan order observable",
            Code::RD003 => "rule scan livelocks (no stable state within fuel)",
            Code::RD004 => "analysis state space truncated; reachability results partial",
            Code::GM001 => "task graph contains a cycle",
            Code::GM002 => "orphan task (no producers and no consumers)",
            Code::GM003 => "edge does not increase the hierarchy level",
            Code::GM004 => "coverage constraint violated",
            Code::GM005 => "spatial-correlation constraint violated",
            Code::DL001 => "merge level waits for more senders than the mapping supplies",
            Code::DL002 => "merge level receives more senders than the quorum consumes",
            Code::CB001 => "total energy exceeds the cost budget",
            Code::CB002 => "hotspot node energy exceeds the cost budget",
            Code::CB003 => "energy balance below the cost budget",
            Code::CB004 => "critical-path latency exceeds the cost budget",
            Code::CC001 => "program cost structure diverges from the task graph",
            Code::CC002 => "certified bound is degenerate (lower exceeds upper)",
            Code::CC003 => "dead handler eliminated; its costs are excluded from the bounds",
            Code::CC004 => "provably-redundant duplicate send (retransmit) in a rule body",
            Code::CC005 => "guard is constant-foldable under propagated state constants",
            Code::SI001 => "handler footprint escapes the region space of its role",
            Code::SI002 => "same-shard write/write conflict: overlapping send footprints",
            Code::SI003 => "cross-shard send off the certified region boundary",
            Code::SI004 => "receive handler writes scalar state across the epoch barrier",
            Code::FL001 => "reachable send site's payload bound exceeds the frame capacity",
            Code::FL002 => "send site's data level is unbounded (no static payload bound)",
            Code::FL003 => "message variant has no wire representation on the fixed frame",
            Code::FL004 => "frame layout table violates an offset/alignment/size invariant",
            Code::FL005 => "causal stamp width cannot hold the certified event-count bound",
            Code::AL001 => "per-event heap allocation site on the certified hot path",
            Code::AL002 => "shared-ownership (Rc/RefCell) access on the certified hot path",
            Code::AL003 => "message buffer escapes past the epoch barrier",
            Code::TC001 => "measured value below the certified lower bound",
            Code::TC002 => "measured value above the certified upper bound",
            Code::TC003 => "certified quantity absent from the trace",
            Code::TC004 => "phase span duration escapes the certified latency interval",
            Code::TC005 => "merge fan-in/completion count mismatches the certified count",
            Code::TC006 => "per-class transmit energy escapes the certified interval",
            Code::TC007 => "trace metadata incompatible with the certificate's config",
            Code::TC008 => "critical path disagrees with the span or certified latency",
            Code::TC009 => "observed cross-shard delivery off the certified boundary edge set",
            Code::TC010 => "per-shard telemetry fails to reconcile with the certified totals",
        }
    }

    /// Every code, in catalog order (for documentation and CLI listing).
    pub fn all() -> &'static [Code] {
        use Code::*;
        &[
            WF001, WF002, WF003, WF004, WF005, WF006, WF007, WF008, WF009, WF010, RD001, RD002,
            RD003, RD004, GM001, GM002, GM003, GM004, GM005, DL001, DL002, CB001, CB002, CB003,
            CB004, CC001, CC002, CC003, CC004, CC005, SI001, SI002, SI003, SI004, FL001, FL002,
            FL003, FL004, FL005, AL001, AL002, AL003, TC001, TC002, TC003, TC004, TC005, TC006,
            TC007, TC008, TC009, TC010,
        ]
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Where in the analyzed IR a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Span {
    /// The artifact as a whole.
    Program,
    /// `program.state[index]`.
    State {
        /// Index into the declaration list.
        index: usize,
        /// Declared name (for rendering).
        name: String,
    },
    /// `program.rules[rule]` (its guard or the rule as a whole).
    Rule {
        /// Index into the rule list.
        rule: usize,
        /// Rule label (for rendering).
        label: String,
    },
    /// An action inside a rule, addressed by its path through nested
    /// `IfElse` bodies: `[2, 0]` is the first action of the third
    /// action's taken branch.
    Action {
        /// Index into the rule list.
        rule: usize,
        /// Path through nested action lists.
        path: Vec<usize>,
    },
    /// A pair of rules (determinism findings).
    RulePair {
        /// First rule index.
        a: usize,
        /// Second rule index.
        b: usize,
    },
    /// A task of the graph.
    Task(TaskId),
    /// An edge of the graph.
    Edge {
        /// Producer.
        from: TaskId,
        /// Consumer.
        to: TaskId,
    },
    /// A virtual node of the mapped deployment.
    Node(GridCoord),
    /// A hierarchy level.
    Level(u8),
    /// A measured quantity (counter, gauge, or histogram) in a trace.
    Metric(String),
    /// A phase span in a trace.
    Phase(String),
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Program => write!(f, "program"),
            Span::State { index, name } => write!(f, "state[{index}] ({name})"),
            Span::Rule { rule, label } => write!(f, "rule[{rule}] ({label:?})"),
            Span::Action { rule, path } => {
                write!(f, "rule[{rule}].action[")?;
                for (i, p) in path.iter().enumerate() {
                    if i > 0 {
                        write!(f, ".")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "]")
            }
            Span::RulePair { a, b } => write!(f, "rules[{a}, {b}]"),
            Span::Task(t) => write!(f, "task {t}"),
            Span::Edge { from, to } => write!(f, "edge {from} -> {to}"),
            Span::Node(c) => write!(f, "node ({}, {})", c.col, c.row),
            Span::Level(l) => write!(f, "level {l}"),
            Span::Metric(name) => write!(f, "metric {name:?}"),
            Span::Phase(name) => write!(f, "phase {name:?}"),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable machine-readable code.
    pub code: Code,
    /// Where it points.
    pub span: Span,
    /// What is wrong, concretely.
    pub message: String,
    /// How to fix it, when the pass can tell.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Error-severity constructor.
    pub fn error(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            span,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Warning-severity constructor.
    pub fn warning(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            span,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Info-severity constructor.
    pub fn info(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Info,
            code,
            span,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a suggested fix.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}\n  --> {}",
            self.severity, self.code, self.message, self.span
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n  help: {s}")?;
        }
        Ok(())
    }
}

/// An ordered batch of findings across passes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty batch.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Appends one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Appends another batch.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// The findings, in report order (call [`Diagnostics::sort`] first for
    /// severity-major ordering).
    pub fn items(&self) -> &[Diagnostic] {
        &self.items
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there are no findings.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when any finding is error-severity.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, s: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == s).count()
    }

    /// The codes present, deduplicated, in catalog order.
    pub fn codes(&self) -> Vec<Code> {
        let mut out: Vec<Code> = self.items.iter().map(|d| d.code).collect();
        out.sort();
        out.dedup();
        out
    }

    /// True when any finding carries `code`.
    pub fn has_code(&self, code: Code) -> bool {
        self.items.iter().any(|d| d.code == code)
    }

    /// Sorts errors first, then warnings, then infos; ties by code,
    /// rendered span, message, and suggestion — a total order over every
    /// field, so reports (and `--json` output) are byte-stable across
    /// runs.
    pub fn sort(&mut self) {
        self.items.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.code.cmp(&b.code))
                .then_with(|| a.span.to_string().cmp(&b.span.to_string()))
                .then_with(|| a.message.cmp(&b.message))
                .then_with(|| a.suggestion.cmp(&b.suggestion))
        });
    }

    /// Renders the batch as terminal text with a trailing summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} finding(s) total\n",
            self.error_count(),
            self.warning_count(),
            self.len()
        ));
        out
    }

    /// Renders the batch as a JSON object `{summary, diagnostics: [...]}`.
    pub fn to_json(&self) -> Json {
        let diags: Vec<Json> = self
            .items
            .iter()
            .map(|d| {
                let mut fields = vec![
                    ("severity".to_owned(), Json::Str(d.severity.to_string())),
                    ("code".to_owned(), Json::Str(d.code.to_string())),
                    ("span".to_owned(), Json::Str(d.span.to_string())),
                    ("message".to_owned(), Json::Str(d.message.clone())),
                ];
                if let Some(s) = &d.suggestion {
                    fields.push(("suggestion".to_owned(), Json::Str(s.clone())));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            (
                "summary".to_owned(),
                Json::Obj(vec![
                    (
                        "errors".to_owned(),
                        Json::from_u64(self.error_count() as u64),
                    ),
                    (
                        "warnings".to_owned(),
                        Json::from_u64(self.warning_count() as u64),
                    ),
                    ("total".to_owned(), Json::from_u64(self.len() as u64)),
                ]),
            ),
            ("diagnostics".to_owned(), Json::Arr(diags)),
        ])
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostics {
        let mut d = Diagnostics::new();
        d.push(Diagnostic::warning(
            Code::RD002,
            Span::RulePair { a: 2, b: 3 },
            "overlap",
        ));
        d.push(
            Diagnostic::error(
                Code::WF002,
                Span::Rule {
                    rule: 0,
                    label: "start".into(),
                },
                "unbound x",
            )
            .with_suggestion("declare x in the state section"),
        );
        d
    }

    #[test]
    fn severity_orders_and_counts() {
        let mut d = sample();
        assert!(d.has_errors());
        assert_eq!(d.error_count(), 1);
        assert_eq!(d.warning_count(), 1);
        d.sort();
        assert_eq!(d.items()[0].code, Code::WF002);
        assert_eq!(d.codes(), vec![Code::WF002, Code::RD002]);
        assert!(d.has_code(Code::RD002));
        assert!(!d.has_code(Code::DL001));
    }

    #[test]
    fn text_rendering_has_span_and_help() {
        let mut d = sample();
        d.sort();
        let text = d.render_text();
        assert!(text.contains("error[WF002]: unbound x"), "{text}");
        assert!(text.contains("--> rule[0] (\"start\")"), "{text}");
        assert!(text.contains("help: declare x"), "{text}");
        assert!(text.contains("1 error(s), 1 warning(s)"), "{text}");
    }

    #[test]
    fn json_rendering_round_trips() {
        let d = sample();
        let rendered = d.to_json().render();
        let parsed = Json::parse(&rendered).unwrap();
        let arr = parsed.get("diagnostics").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(
            parsed
                .get("summary")
                .unwrap()
                .get("errors")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert!(arr
            .iter()
            .any(|j| j.get("code").unwrap().as_str() == Some("WF002")));
    }

    #[test]
    fn every_code_has_a_description() {
        for &c in Code::all() {
            assert!(!c.description().is_empty(), "{c}");
        }
        assert_eq!(Code::all().len(), 52);
    }
}
