//! Differential chaos fuzzing of the self-healing runtime.
//!
//! A [`ChaosScenario`] bundles everything one fuzz case needs: a random
//! deployment, a random scalar field, and a random [`ChaosPlan`] of typed
//! fault injections. [`run_scenario`] executes the distributed quad-tree
//! labeling under [`wsn_runtime::PhysicalRuntime::run_chaos_mission`] and
//! differentially checks every surviving answer against the centralized
//! [`label_regions`] oracle on the same field.
//!
//! The safety contract mirrors `tests/churn_and_loss.rs`: under arbitrary
//! injected faults the network may *stall* (produce no answer within the
//! epoch budget), but any answer it does produce must equal the oracle's
//! region count. A wrong answer is always a bug; [`shrink_plan`] then
//! greedily minimizes the offending plan one event at a time so the
//! failure reproduces from the smallest schedule.
//!
//! Everything is seeded: the same scenario seed regenerates the same
//! deployment, field, plan, and — because the kernel is deterministic —
//! the same verdict, which is what makes failures replayable from a
//! one-line report.

use crate::dandc::{DandcMsg, DandcProgram};
use crate::field::{Field, FieldSpec};
use crate::regions::label_regions;
use wsn_net::{ChaosPlan, DeliveryChaos, DeploymentSpec, LinkModel, RadioModel};
use wsn_runtime::{ChaosMissionReport, PhysicalRuntime, SelfHealConfig};
use wsn_sim::{DetRng, SimTime};

/// RNG stream tag for scenario generation (distinct from any kernel
/// stream so fuzz draws never alias simulation draws).
const STREAM_SCENARIO: u64 = 0xCA05;
/// Field generation gets its own seed lane.
const FIELD_SEED_XOR: u64 = 0xF1E1D;

/// One self-contained fuzz case.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// The seed that regenerates this scenario exactly.
    pub seed: u64,
    /// Virtual grid side (cells per side).
    pub side: u32,
    /// Physical nodes deployed per cell.
    pub per_cell: usize,
    /// Feature threshold for the labeling query.
    pub threshold: f64,
    /// The sensed field.
    pub field: Field,
    /// The fault schedule under test.
    pub plan: ChaosPlan,
    /// Optional hop-by-hop ARQ `(max_retries, timeout_ticks)`.
    pub arq: Option<(u32, u64)>,
    /// Optional per-node energy budget.
    pub budget: Option<f64>,
}

/// Outcome of differentially checking one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosVerdict {
    /// Every exfiltrated answer matched the centralized oracle.
    Correct,
    /// No answer survived the fault schedule — explicit silence, the
    /// acceptable failure mode.
    Stall,
    /// An answer disagreed with the oracle — always a bug.
    Wrong {
        /// Region count the network reported.
        got: usize,
        /// Region count the oracle computed.
        want: usize,
    },
}

impl ChaosVerdict {
    /// `true` unless the verdict is [`ChaosVerdict::Wrong`].
    pub fn is_safe(self) -> bool {
        !matches!(self, ChaosVerdict::Wrong { .. })
    }
}

/// Everything [`run_scenario`] observed about one execution.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The differential verdict.
    pub verdict: ChaosVerdict,
    /// The self-healing mission's own report.
    pub report: ChaosMissionReport,
    /// Answers that survived (exfiltrated region counts, in order).
    pub answers: Vec<usize>,
    /// The oracle's region count for the scenario's field.
    pub oracle: usize,
    /// Flight-recorder dump (JSONL, see `wsn_obs::FlightDump`) of the
    /// last dispatches before a [`ChaosVerdict::Wrong`] answer; `None`
    /// on safe verdicts. `wsn-chaos` writes it next to the failure
    /// report so the wrong answer's tail is post-mortem inspectable.
    pub flight_jsonl: Option<String>,
}

impl ChaosScenario {
    /// Deterministically generates the fuzz case for `seed`: a small
    /// deployment, a random field shape, and a bounded random schedule of
    /// typed faults (crashes, recoveries, link degradation, a partition
    /// with a later heal, delivery chaos, energy shocks), with ARQ and a
    /// finite energy budget mixed in occasionally.
    pub fn generate(seed: u64) -> Self {
        let mut rng = DetRng::stream(seed, STREAM_SCENARIO);
        let side = if rng.chance(0.5) { 2 } else { 4 };
        let per_cell = 3 + rng.bounded_usize(3);
        let n = (side * side) as usize * per_cell;
        let threshold = 5.0;
        let spec = match rng.bounded_usize(3) {
            0 => FieldSpec::Blobs {
                count: 1 + rng.bounded_usize(4),
                amplitude: 10.0,
                radius: 1.0 + rng.unit_f64() * 2.0,
            },
            1 => FieldSpec::RandomCells {
                p: 0.2 + 0.6 * rng.unit_f64(),
                hot: 10.0,
                cold: 0.0,
            },
            _ => FieldSpec::Gradient {
                west: 0.0,
                east: 10.0,
            },
        };
        let field = Field::generate(spec, side, seed ^ FIELD_SEED_XOR);
        // Faults land anywhere from bring-up through the first few
        // epochs; events during bring-up are legal (the mission must
        // still answer correctly or stall).
        let horizon = 600;
        let mut plan = ChaosPlan::none();
        for _ in 0..(1 + rng.bounded_usize(6)) {
            let at = SimTime::from_ticks(1 + rng.bounded_u64(horizon));
            match rng.bounded_usize(6) {
                0 => plan = plan.crash_at(at, rng.bounded_usize(n)),
                1 => plan = plan.recover_at(at, rng.bounded_usize(n)),
                2 => {
                    let a = rng.bounded_usize(n);
                    let b = (a + 1 + rng.bounded_usize(n - 1)) % n;
                    plan = plan.degrade_link_at(at, a, b, 0.3 + 0.7 * rng.unit_f64());
                }
                3 => {
                    // Split the deployment in two and heal soon after —
                    // a permanent partition would only exercise Stall.
                    let cut = 1 + rng.bounded_usize(n - 1);
                    plan = plan
                        .partition_at(at, (0..cut).collect(), (cut..n).collect())
                        .heal_partition_at(at + 40 + rng.bounded_u64(120));
                }
                4 => {
                    plan = plan.delivery_at(
                        at,
                        DeliveryChaos {
                            dup_prob: 0.3 * rng.unit_f64(),
                            reorder_prob: 0.5 * rng.unit_f64(),
                            reorder_max_extra_ticks: 1 + rng.bounded_u64(4),
                        },
                    );
                }
                _ => {
                    plan = plan.energy_shock_at(
                        at,
                        rng.bounded_usize(n),
                        50.0 + 200.0 * rng.unit_f64(),
                    );
                }
            }
        }
        let arq = rng.chance(0.3).then_some((4, 24));
        let budget = rng.chance(0.25).then_some(400.0);
        ChaosScenario {
            seed,
            side,
            per_cell,
            threshold,
            field,
            plan,
            arq,
            budget,
        }
    }

    /// The centralized ground truth: region count of the thresholded
    /// field under [`label_regions`].
    pub fn oracle_region_count(&self) -> usize {
        label_regions(&self.field.threshold(self.threshold)).region_count()
    }
}

/// Runs the scenario's own plan. See [`run_scenario_with_plan`].
pub fn run_scenario(scenario: &ChaosScenario) -> ScenarioOutcome {
    run_scenario_with_plan(scenario, scenario.plan.clone())
}

/// Executes the distributed quad-tree labeling under `plan` (which may be
/// a shrunk variant of the scenario's own) and differentially checks
/// every exfiltrated answer against the centralized oracle.
pub fn run_scenario_with_plan(scenario: &ChaosScenario, plan: ChaosPlan) -> ScenarioOutcome {
    let deployment =
        DeploymentSpec::per_cell(scenario.side, scenario.per_cell).generate(scenario.seed);
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    let field = scenario.field.clone();
    let mut rt: PhysicalRuntime<DandcMsg> = PhysicalRuntime::new(
        deployment,
        RadioModel::uniform(range),
        LinkModel::ideal(),
        scenario.budget,
        1,
        scenario.seed,
        move |c| field.value(c),
    );
    let (side, threshold) = (scenario.side, scenario.threshold);
    // Scenario sides are always powers of two, so the cut-1 flight
    // recorder can ride along: it retains the last dispatches per
    // quadrant in preallocated rings, and costs nothing observable.
    rt.enable_flight_recorder(1, 64);
    rt.install_programs(move |_| Box::new(DandcProgram::new(side, threshold)));
    if let Some((max_retries, timeout_ticks)) = scenario.arq {
        rt.enable_arq(max_retries, timeout_ticks);
    }
    rt.install_chaos(plan).expect("generated plans validate");
    // Lease expiry catches dead leaders; the §5.1 periodic re-emulation
    // additionally routes around dead *relays*, whose death expires no
    // lease but silently eats forwarded envelopes.
    let cfg = SelfHealConfig {
        refresh_every_epochs: 4,
        ..SelfHealConfig::default()
    };
    let report = rt.run_chaos_mission(cfg, 1);
    let oracle = scenario.oracle_region_count();
    let answers: Vec<usize> = rt
        .take_exfiltrated()
        .iter()
        .map(|e| e.payload.data.expect_complete().region_count())
        .collect();
    let verdict = match answers.iter().find(|&&got| got != oracle) {
        Some(&got) => ChaosVerdict::Wrong { got, want: oracle },
        None if answers.is_empty() => ChaosVerdict::Stall,
        None => ChaosVerdict::Correct,
    };
    let flight_jsonl = if verdict.is_safe() {
        None
    } else {
        rt.flight_dump("chaos-wrong").map(|d| d.to_jsonl())
    };
    ScenarioOutcome {
        verdict,
        report,
        answers,
        oracle,
        flight_jsonl,
    }
}

/// Greedy delta-debugging: starting from `scenario.plan`, repeatedly
/// drops any single event whose removal keeps `failing` true, until no
/// single removal preserves the failure. Returns the minimized plan.
///
/// `failing` receives each candidate's outcome; pass a predicate matching
/// the failure you are chasing (e.g. "verdict is Wrong").
pub fn shrink_plan(
    scenario: &ChaosScenario,
    failing: impl Fn(&ScenarioOutcome) -> bool,
) -> ChaosPlan {
    let mut plan = scenario.plan.clone();
    loop {
        let mut shrunk = false;
        for i in 0..plan.len() {
            let candidate = plan.without_event(i);
            if failing(&run_scenario_with_plan(scenario, candidate.clone())) {
                plan = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return plan;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..20 {
            let a = ChaosScenario::generate(seed);
            let b = ChaosScenario::generate(seed);
            assert_eq!(a.plan.events(), b.plan.events(), "seed {seed}");
            assert_eq!(a.side, b.side);
            assert_eq!(a.per_cell, b.per_cell);
            assert!(!a.plan.is_empty(), "every scenario injects something");
            let n = (a.side * a.side) as usize * a.per_cell;
            a.plan
                .validate(n, SimTime::ZERO)
                .unwrap_or_else(|e| panic!("seed {seed} generated invalid plan: {e}"));
        }
    }

    #[test]
    fn distinct_seeds_diversify_fault_kinds() {
        use std::collections::BTreeSet;
        let kinds: BTreeSet<String> = (0..40)
            .flat_map(|seed| {
                ChaosScenario::generate(seed)
                    .plan
                    .events()
                    .iter()
                    .map(|e| {
                        let s = e.kind.to_string();
                        s[..s.find('(').unwrap_or(s.len())].to_string()
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        assert!(
            kinds.len() >= 5,
            "40 seeds should exercise most fault kinds, got {kinds:?}"
        );
    }

    #[test]
    fn benign_scenario_is_correct_and_replays_identically() {
        // A delivery-chaos-only plan on a healthy net must stay correct.
        let scenario = ChaosScenario {
            seed: 7,
            side: 2,
            per_cell: 3,
            threshold: 5.0,
            field: Field::generate(
                FieldSpec::Blobs {
                    count: 2,
                    amplitude: 10.0,
                    radius: 1.5,
                },
                2,
                7,
            ),
            plan: ChaosPlan::none().delivery_at(
                SimTime::from_ticks(5),
                DeliveryChaos {
                    dup_prob: 0.3,
                    reorder_prob: 0.3,
                    reorder_max_extra_ticks: 3,
                },
            ),
            arq: None,
            budget: None,
        };
        let a = run_scenario(&scenario);
        assert_eq!(a.verdict, ChaosVerdict::Correct, "{a:?}");
        let b = run_scenario(&scenario);
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.report, b.report, "bit-identical replay");
        assert_eq!(a.answers, b.answers);
    }

    #[test]
    fn shrink_drops_irrelevant_events() {
        // A scenario whose plan contains one event that forces a stall
        // (partition never healed) plus harmless link noise: shrinking a
        // "stalled" failure must keep the partition and drop the rest.
        let base = ChaosScenario::generate(3);
        let n = (base.side * base.side) as usize * base.per_cell;
        let scenario = ChaosScenario {
            plan: ChaosPlan::none()
                .degrade_link_at(SimTime::from_ticks(2), 0, 1, 0.4)
                .partition_at(
                    SimTime::from_ticks(4),
                    (0..n / 2).collect(),
                    (n / 2..n).collect(),
                )
                .degrade_link_at(SimTime::from_ticks(6), 1, 2, 0.4),
            arq: None,
            budget: None,
            ..base
        };
        let outcome = run_scenario(&scenario);
        assert_eq!(outcome.verdict, ChaosVerdict::Stall, "{outcome:?}");
        let minimal = shrink_plan(&scenario, |o| o.verdict == ChaosVerdict::Stall);
        assert_eq!(minimal.len(), 1, "only the partition matters: {minimal:?}");
        assert!(
            minimal.events()[0]
                .kind
                .to_string()
                .starts_with("partition"),
            "{minimal:?}"
        );
    }
}
