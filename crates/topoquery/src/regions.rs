//! Ground-truth identification and labeling of homogeneous regions.
//!
//! §3.1: "A homogeneous region (or feature region) is one where all
//! sensors have the same reading of a phenomenon." On the binary feature
//! map this is classic connected-component labeling with 4-connectivity
//! (the reference algorithm the in-network divide-and-conquer result is
//! validated against — Alnuweiri & Prasanna's problem, computed here the
//! easy, centralized way).

use crate::field::FeatureMap;
use wsn_core::GridCoord;

/// The labeling of a feature map into homogeneous regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionLabeling {
    side: u32,
    /// Region label per cell (`None` = not a feature node). Labels are
    /// dense, `0..region_count`, assigned in row-major discovery order.
    labels: Vec<Option<u32>>,
    /// Cells per region, indexed by label.
    areas: Vec<u32>,
}

impl RegionLabeling {
    /// Number of feature regions.
    pub fn region_count(&self) -> usize {
        self.areas.len()
    }

    /// Region label of `c`, if it is a feature node.
    pub fn label_of(&self, c: GridCoord) -> Option<u32> {
        assert!(
            c.col < self.side && c.row < self.side,
            "{c:?} outside labeling"
        );
        self.labels[(c.row * self.side + c.col) as usize]
    }

    /// Area (cell count) of region `label`.
    pub fn area(&self, label: u32) -> u32 {
        self.areas[label as usize]
    }

    /// All region areas, indexed by label.
    pub fn areas(&self) -> &[u32] {
        &self.areas
    }

    /// Areas in descending order (size distribution of regions).
    pub fn areas_sorted_desc(&self) -> Vec<u32> {
        let mut v = self.areas.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Whether two cells belong to the same region.
    pub fn same_region(&self, a: GridCoord, b: GridCoord) -> bool {
        match (self.label_of(a), self.label_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }
}

/// Labels the homogeneous feature regions of `map` (BFS flood fill,
/// 4-connectivity).
pub fn label_regions(map: &FeatureMap) -> RegionLabeling {
    let side = map.side();
    let n = (side as usize).pow(2);
    let idx = |c: GridCoord| (c.row * side + c.col) as usize;
    let mut labels: Vec<Option<u32>> = vec![None; n];
    let mut areas = Vec::new();

    for row in 0..side {
        for col in 0..side {
            let start = GridCoord::new(col, row);
            if !map.is_feature(start) || labels[idx(start)].is_some() {
                continue;
            }
            let label = areas.len() as u32;
            let mut area = 0u32;
            let mut queue = std::collections::VecDeque::from([start]);
            labels[idx(start)] = Some(label);
            while let Some(c) = queue.pop_front() {
                area += 1;
                let mut push = |col: i64, row: i64| {
                    if col < 0 || row < 0 || col >= i64::from(side) || row >= i64::from(side) {
                        return;
                    }
                    let nc = GridCoord::new(col as u32, row as u32);
                    if map.is_feature(nc) && labels[idx(nc)].is_none() {
                        labels[idx(nc)] = Some(label);
                        queue.push_back(nc);
                    }
                };
                push(i64::from(c.col) - 1, i64::from(c.row));
                push(i64::from(c.col) + 1, i64::from(c.row));
                push(i64::from(c.col), i64::from(c.row) - 1);
                push(i64::from(c.col), i64::from(c.row) + 1);
            }
            areas.push(area);
        }
    }

    RegionLabeling {
        side,
        labels,
        areas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FeatureMap;

    fn map_of(rows: &[&str]) -> FeatureMap {
        let side = rows.len() as u32;
        let rows: Vec<Vec<bool>> = rows
            .iter()
            .map(|r| r.chars().map(|c| c == '#').collect())
            .collect();
        FeatureMap::from_fn(side, move |c| rows[c.row as usize][c.col as usize])
    }

    #[test]
    fn empty_map_has_no_regions() {
        let l = label_regions(&map_of(&["....", "....", "....", "...."]));
        assert_eq!(l.region_count(), 0);
    }

    #[test]
    fn full_map_is_one_region() {
        let l = label_regions(&map_of(&["####", "####", "####", "####"]));
        assert_eq!(l.region_count(), 1);
        assert_eq!(l.area(0), 16);
    }

    #[test]
    fn diagonal_cells_are_separate_regions() {
        // 4-connectivity: diagonal adjacency does not connect.
        let l = label_regions(&map_of(&["#.", ".#"]));
        assert_eq!(l.region_count(), 2);
        assert_eq!(l.areas(), &[1, 1]);
        assert!(!l.same_region(GridCoord::new(0, 0), GridCoord::new(1, 1)));
    }

    #[test]
    fn u_shape_is_one_region() {
        let l = label_regions(&map_of(&["#.#", "#.#", "###"]));
        assert_eq!(l.region_count(), 1);
        assert_eq!(l.area(0), 7);
        assert!(l.same_region(GridCoord::new(0, 0), GridCoord::new(2, 0)));
    }

    #[test]
    fn multiple_regions_with_areas() {
        let l = label_regions(&map_of(&["##..", "##..", "...#", "..##"]));
        assert_eq!(l.region_count(), 2);
        assert_eq!(l.areas_sorted_desc(), vec![4, 3]);
        assert_eq!(l.label_of(GridCoord::new(0, 0)), Some(0));
        assert_eq!(l.label_of(GridCoord::new(3, 2)), Some(1));
        assert_eq!(l.label_of(GridCoord::new(2, 0)), None);
    }

    #[test]
    fn labels_are_dense_and_row_major() {
        let l = label_regions(&map_of(&["#.#", "...", "#.#"]));
        assert_eq!(l.region_count(), 4);
        assert_eq!(l.label_of(GridCoord::new(0, 0)), Some(0));
        assert_eq!(l.label_of(GridCoord::new(2, 0)), Some(1));
        assert_eq!(l.label_of(GridCoord::new(0, 2)), Some(2));
        assert_eq!(l.label_of(GridCoord::new(2, 2)), Some(3));
    }

    #[test]
    fn areas_sum_to_feature_count() {
        let m = map_of(&["#..#", "##.#", ".#..", "####"]);
        let l = label_regions(&m);
        let total: u32 = l.areas().iter().sum();
        assert_eq!(total as usize, m.feature_count());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::field::{Field, FieldSpec};
    use proptest::prelude::*;

    proptest! {
        /// Region areas always sum to the feature count, and every feature
        /// cell is labeled with a valid dense label.
        #[test]
        fn labeling_invariants(side in 1u32..12, p in 0.0f64..1.0, seed in 0u64..500) {
            let map = Field::generate(
                FieldSpec::RandomCells { p, hot: 1.0, cold: 0.0 }, side, seed,
            ).threshold(0.5);
            let l = label_regions(&map);
            let mut seen_area = vec![0u32; l.region_count()];
            for row in 0..side {
                for col in 0..side {
                    let c = GridCoord::new(col, row);
                    match l.label_of(c) {
                        Some(lab) => {
                            prop_assert!(map.is_feature(c));
                            prop_assert!((lab as usize) < l.region_count());
                            seen_area[lab as usize] += 1;
                        }
                        None => prop_assert!(!map.is_feature(c)),
                    }
                }
            }
            for (lab, &a) in seen_area.iter().enumerate() {
                prop_assert_eq!(a, l.area(lab as u32));
                prop_assert!(a > 0, "empty region {}", lab);
            }
        }

        /// Adjacent feature cells share a label.
        #[test]
        fn adjacency_implies_same_label(side in 2u32..10, p in 0.2f64..0.9, seed in 0u64..200) {
            let map = Field::generate(
                FieldSpec::RandomCells { p, hot: 1.0, cold: 0.0 }, side, seed,
            ).threshold(0.5);
            let l = label_regions(&map);
            for row in 0..side {
                for col in 0..side {
                    let c = GridCoord::new(col, row);
                    if !map.is_feature(c) { continue; }
                    if col + 1 < side {
                        let e = GridCoord::new(col + 1, row);
                        if map.is_feature(e) {
                            prop_assert!(l.same_region(c, e));
                        }
                    }
                    if row + 1 < side {
                        let s = GridCoord::new(col, row + 1);
                        if map.is_feature(s) {
                            prop_assert!(l.same_region(c, s));
                        }
                    }
                }
            }
        }
    }
}
