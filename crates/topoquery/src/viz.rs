//! Text visualization of fields, feature maps and labelings.
//!
//! §3.1: "The end user might be interested in visualizing gradients of
//! sensor readings across the region." These renderers produce the
//! terminal-friendly view of that delineation; examples print them, and
//! golden tests pin the format.

use crate::field::{FeatureMap, Field};
use crate::regions::RegionLabeling;
use wsn_core::GridCoord;

/// Renders a feature map: `#` for feature cells, `.` otherwise.
pub fn render_feature_map(map: &FeatureMap) -> String {
    let side = map.side();
    let mut out = String::with_capacity((side as usize + 1) * side as usize);
    for row in 0..side {
        for col in 0..side {
            out.push(if map.is_feature(GridCoord::new(col, row)) {
                '#'
            } else {
                '.'
            });
        }
        out.push('\n');
    }
    out
}

/// Renders a labeling: each feature cell shows its region label (mod 36,
/// as 0-9a-z), non-features show `.`.
pub fn render_labeling(labeling: &RegionLabeling, side: u32) -> String {
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    let mut out = String::with_capacity((side as usize + 1) * side as usize);
    for row in 0..side {
        for col in 0..side {
            match labeling.label_of(GridCoord::new(col, row)) {
                Some(label) => out.push(GLYPHS[label as usize % GLYPHS.len()] as char),
                None => out.push('.'),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a scalar field as a gradient of intensity glyphs between the
/// field's own min and max readings.
pub fn render_field(field: &Field) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let side = field.side();
    let values: Vec<f64> = (0..side)
        .flat_map(|row| (0..side).map(move |col| (col, row)))
        .map(|(col, row)| field.value(GridCoord::new(col, row)))
        .collect();
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    let mut out = String::with_capacity((side as usize + 1) * side as usize);
    for (i, v) in values.iter().enumerate() {
        let t = ((v - min) / span * (RAMP.len() - 1) as f64).round() as usize;
        out.push(RAMP[t.min(RAMP.len() - 1)] as char);
        if (i + 1) % side as usize == 0 {
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldSpec;
    use crate::regions::label_regions;

    #[test]
    fn feature_map_rendering_is_exact() {
        let map = FeatureMap::from_fn(3, |c| c.col == c.row);
        assert_eq!(render_feature_map(&map), "#..\n.#.\n..#\n");
    }

    #[test]
    fn labeling_rendering_shows_distinct_regions() {
        let map = FeatureMap::from_fn(3, |c| c.row != 1);
        let l = label_regions(&map);
        assert_eq!(render_labeling(&l, 3), "000\n...\n111\n");
    }

    #[test]
    fn field_rendering_spans_the_ramp() {
        let f = Field::generate(
            FieldSpec::Gradient {
                west: 0.0,
                east: 9.0,
            },
            10,
            1,
        );
        let s = render_field(&f);
        let first_line = s.lines().next().unwrap();
        assert_eq!(first_line.len(), 10);
        assert!(first_line.starts_with(' '), "west edge is the minimum");
        assert!(first_line.ends_with('@'), "east edge is the maximum");
    }

    #[test]
    fn uniform_field_renders_without_nan() {
        let f = Field::generate(FieldSpec::Uniform(5.0), 4, 1);
        let s = render_field(&f);
        assert_eq!(s.lines().count(), 4);
    }
}
