//! Topographic queries over the aggregated result.
//!
//! §3.1: "Once this information is gathered and stored in the network,
//! other queries can be answered" — counting regions of interest,
//! enumerating regions in a reading range, point membership, and simple
//! statistics over region sizes.

use crate::boundary::BoundarySummary;
use crate::field::{FeatureMap, Field};
use crate::regions::{label_regions, RegionLabeling};

/// Number of homogeneous feature regions, answered from the root summary
/// (exact at the root: §3.1's "a query to count the number of regions of
/// interest").
pub fn count_regions(root: &BoundarySummary) -> usize {
    root.region_count()
}

/// Total area covered by feature regions.
pub fn total_feature_area(root: &BoundarySummary) -> u64 {
    root.feature_area()
}

/// Region areas in descending order.
pub fn region_areas_desc(root: &BoundarySummary) -> Vec<u64> {
    let mut v: Vec<u64> = root
        .open_areas()
        .iter()
        .copied()
        .chain(root.closed_areas().iter().copied())
        .collect();
    v.sort_unstable_by(|a, b| b.cmp(a));
    v
}

/// Number of regions with area at least `min_area` (e.g. "significant
/// plumes only").
pub fn count_regions_with_area_at_least(root: &BoundarySummary, min_area: u64) -> usize {
    region_areas_desc(root)
        .into_iter()
        .filter(|&a| a >= min_area)
        .count()
}

/// The largest region's area, if any region exists.
pub fn largest_region_area(root: &BoundarySummary) -> Option<u64> {
    region_areas_desc(root).first().copied()
}

/// Thresholds the field into the band `lo ≤ reading < hi` and labels the
/// resulting regions — §3.1's "enumeration of regions with sensor readings
/// in a specific range".
pub fn regions_in_reading_range(field: &Field, lo: f64, hi: f64) -> RegionLabeling {
    assert!(lo <= hi, "empty reading range");
    let map = FeatureMap::from_fn(field.side(), |c| {
        let v = field.value(c);
        v >= lo && v < hi
    });
    label_regions(&map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldSpec;
    use wsn_core::GridCoord;

    fn summary_of(rows: &[&str]) -> BoundarySummary {
        let side = rows.len() as u32;
        let rows: Vec<Vec<bool>> = rows
            .iter()
            .map(|r| r.chars().map(|c| c == '#').collect())
            .collect();
        let map = FeatureMap::from_fn(side, move |c| rows[c.row as usize][c.col as usize]);
        BoundarySummary::from_feature_map(&map, GridCoord::new(0, 0), side)
    }

    #[test]
    fn counting_queries() {
        let s = summary_of(&["##..", "##..", "....", ".##."]);
        assert_eq!(count_regions(&s), 2);
        assert_eq!(total_feature_area(&s), 6);
        assert_eq!(region_areas_desc(&s), vec![4, 2]);
        assert_eq!(count_regions_with_area_at_least(&s, 3), 1);
        assert_eq!(count_regions_with_area_at_least(&s, 1), 2);
        assert_eq!(count_regions_with_area_at_least(&s, 5), 0);
        assert_eq!(largest_region_area(&s), Some(4));
    }

    #[test]
    fn border_cells_delineate_open_regions() {
        let s = summary_of(&["##..", "#...", "....", "...#"]);
        let borders = s.open_region_border_cells();
        assert_eq!(borders.len(), 2);
        // Class 0 (discovered first on the walk): the NW blob's border
        // cells on the 4×4 perimeter.
        let nw: Vec<(u32, u32)> = borders[0].iter().map(|c| (c.col, c.row)).collect();
        assert_eq!(nw, vec![(0, 0), (1, 0), (0, 1)]);
        let se: Vec<(u32, u32)> = borders[1].iter().map(|c| (c.col, c.row)).collect();
        assert_eq!(se, vec![(3, 3)]);
    }

    #[test]
    fn empty_summary_queries() {
        let s = summary_of(&["....", "....", "....", "...."]);
        assert_eq!(count_regions(&s), 0);
        assert_eq!(largest_region_area(&s), None);
        assert_eq!(total_feature_area(&s), 0);
    }

    #[test]
    fn reading_range_bands_a_gradient() {
        let f = Field::generate(
            FieldSpec::Gradient {
                west: 0.0,
                east: 7.0,
            },
            8,
            1,
        );
        // Band [2, 5): columns 2..=4 → one vertical stripe.
        let l = regions_in_reading_range(&f, 2.0, 5.0);
        assert_eq!(l.region_count(), 1);
        assert_eq!(l.area(0), 24);
        assert!(l.label_of(GridCoord::new(3, 0)).is_some());
        assert!(l.label_of(GridCoord::new(0, 0)).is_none());
        assert!(l.label_of(GridCoord::new(7, 0)).is_none());
    }

    #[test]
    #[should_panic(expected = "empty reading range")]
    fn inverted_range_panics() {
        let f = Field::generate(FieldSpec::Uniform(0.0), 2, 1);
        regions_in_reading_range(&f, 5.0, 1.0);
    }
}
