//! The divide-and-conquer in-network algorithm (§4.1) and its drivers.
//!
//! Two interchangeable node programs compute the same result:
//!
//! * [`DandcProgram`] — the hand-written ("native") implementation of the
//!   Figure-4 behavior, as a programmer would code it directly;
//! * the synthesized guarded-command program from `wsn-synth`, executed by
//!   its interpreter with [`crate::merge::RegionSemantics`].
//!
//! Tests assert the two produce byte-identical root summaries — the
//! synthesis stage does not change the algorithm, only its provenance.
//!
//! The drivers run either program on the ideal virtual machine
//! ([`run_dandc_vm`]) or the emulated physical network
//! ([`run_dandc_physical`]); both return the exfiltrated root summary plus
//! the standard metric bundle, which is what the experiment harness
//! tabulates.

use crate::boundary::BoundarySummary;
use crate::field::Field;
use crate::merge::{merge_pieces, RegionSemantics, RegionSummary};
use std::rc::Rc;
use wsn_core::{CostModel, GridCoord, Hierarchy, NodeApi, NodeProgram, RunMetrics, Vm};
use wsn_net::{Deployment, LinkModel, RadioModel};
use wsn_runtime::{AppReport, BindReport, PhysicalRuntime, TopoReport};
use wsn_synth::{synthesize_quadtree_program, SummaryMsg, SynthesizedNode};

/// The message type both implementations exchange.
pub type DandcMsg = SummaryMsg<RegionSummary>;

/// Hand-written implementation of the quad-tree region-labeling node
/// program.
pub struct DandcProgram {
    threshold: f64,
    hierarchy: Hierarchy,
    /// Received quadrant summaries, per level.
    pieces: Vec<Vec<BoundarySummary>>,
}

impl DandcProgram {
    /// A program instance for one node of a `side × side` grid.
    pub fn new(side: u32, threshold: f64) -> Self {
        let hierarchy = Hierarchy::new(side);
        let levels = hierarchy.max_level() as usize + 2;
        DandcProgram {
            threshold,
            hierarchy,
            pieces: vec![Vec::new(); levels],
        }
    }

    fn ship(&mut self, api: &mut dyn NodeApi<DandcMsg>, level: u8, summary: BoundarySummary) {
        if level > self.hierarchy.max_level() {
            unreachable!("shipping beyond the root level");
        }
        let units = summary.units();
        let msg = SummaryMsg {
            sender: api.coord(),
            level,
            data: RegionSummary::Complete(summary),
        };
        let dest = self.hierarchy.leader(api.coord(), level);
        api.send(dest, units, msg);
    }
}

impl NodeProgram<DandcMsg> for DandcProgram {
    fn on_init(&mut self, api: &mut dyn NodeApi<DandcMsg>) {
        let reading = api.read_sensor();
        api.compute(1);
        let leaf = BoundarySummary::leaf(api.coord(), reading >= self.threshold);
        if self.hierarchy.max_level() == 0 {
            // 1×1 grid: the leaf is the final aggregation.
            api.exfiltrate(SummaryMsg {
                sender: api.coord(),
                level: 0,
                data: RegionSummary::Complete(leaf),
            });
        } else {
            self.ship(api, 1, leaf);
        }
    }

    fn on_receive(&mut self, api: &mut dyn NodeApi<DandcMsg>, _from: GridCoord, msg: DandcMsg) {
        let level = msg.level as usize;
        let piece = msg.data.expect_complete().clone();
        api.compute(piece.units());
        self.pieces[level].push(piece);
        if self.pieces[level].len() == 4 {
            let merged = merge_pieces(std::mem::take(&mut self.pieces[level]));
            // Telemetry: the completion instant of each quadtree merge, by
            // level. The runtime reconstructs per-level spans from these.
            api.stat_observe(
                &format!("merge.level{}.complete", msg.level),
                api.now().ticks() as f64,
            );
            if msg.level == self.hierarchy.max_level() {
                api.exfiltrate(SummaryMsg {
                    sender: api.coord(),
                    level: msg.level,
                    data: RegionSummary::Complete(merged),
                });
            } else {
                self.ship(api, msg.level + 1, merged);
            }
        }
    }
}

/// Which implementation of the algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Implementation {
    /// The hand-written node program.
    Native,
    /// The synthesized guarded-command program under interpretation.
    Synthesized,
}

/// Result of a divide-and-conquer run.
#[derive(Debug, Clone)]
pub struct DandcOutcome {
    /// The root's merged summary (absent if the run stalled, e.g. under
    /// message loss).
    pub summary: Option<BoundarySummary>,
    /// The standard metric bundle.
    pub metrics: RunMetrics,
    /// Number of exfiltrations (1 on success).
    pub exfil_count: usize,
}

fn make_factory(
    implementation: Implementation,
    side: u32,
    threshold: f64,
) -> impl FnMut(GridCoord) -> Box<dyn NodeProgram<DandcMsg>> {
    let program = Rc::new(synthesize_quadtree_program(
        Hierarchy::new(side).max_level(),
    ));
    let semantics = Rc::new(RegionSemantics { threshold });
    move |_coord| match implementation {
        Implementation::Native => Box::new(DandcProgram::new(side, threshold)),
        Implementation::Synthesized => Box::new(SynthesizedNode::new(
            program.clone(),
            semantics.clone(),
            side,
        )),
    }
}

/// Runs the algorithm on the ideal virtual machine with the uniform cost
/// model.
pub fn run_dandc_vm(
    side: u32,
    field: &Field,
    threshold: f64,
    seed: u64,
    implementation: Implementation,
) -> DandcOutcome {
    run_dandc_vm_with_cost(
        side,
        field,
        threshold,
        seed,
        implementation,
        CostModel::uniform(),
    )
}

/// Runs the algorithm on the ideal virtual machine under an explicit cost
/// model. Setting `ticks_per_unit = 0` yields the paper's *step* model
/// (one latency unit per hop regardless of message size), under which the
/// O(√n)-steps claim of §4.1 is measured.
pub fn run_dandc_vm_with_cost(
    side: u32,
    field: &Field,
    threshold: f64,
    seed: u64,
    implementation: Implementation,
    cost: CostModel,
) -> DandcOutcome {
    let field = field.clone();
    let mut vm: Vm<DandcMsg> = Vm::new(
        side,
        cost,
        seed,
        move |c| field.value(c),
        make_factory(implementation, side, threshold),
    );
    vm.run();
    let metrics = vm.metrics();
    let exfil = vm.take_exfiltrated();
    DandcOutcome {
        exfil_count: exfil.len(),
        summary: exfil
            .into_iter()
            .next()
            .map(|e| e.payload.data.expect_complete().clone()),
        metrics,
    }
}

/// Reports from the three runtime phases of a physical run.
#[derive(Debug, Clone)]
pub struct PhysicalReports {
    /// Topology emulation (§5.1).
    pub topo: TopoReport,
    /// Binding (§5.2).
    pub bind: BindReport,
    /// Application execution.
    pub app: AppReport,
}

/// Runs the algorithm on an emulated physical deployment: topology
/// emulation, then binding, then the application.
///
/// `link` applies to the *application* phase only; the control phases run
/// on reliable links. The paper's protocols carry no loss handling — their
/// repair mechanism is periodic re-execution (§5.1) — so subjecting them
/// to per-message loss would measure an unimplemented failure mode (two
/// nodes can end up believing they lead one cell). Application traffic is
/// where §4.3's asynchronous incremental merge earns its keep, and that is
/// what EXP-12 stresses.
pub fn run_dandc_physical(
    deployment: Deployment,
    link: LinkModel,
    threshold: f64,
    field: &Field,
    seed: u64,
    implementation: Implementation,
) -> (DandcOutcome, PhysicalReports) {
    run_dandc_physical_with(
        deployment,
        link,
        threshold,
        field,
        seed,
        implementation,
        None,
    )
}

/// [`run_dandc_physical`] with optional hop-by-hop ARQ
/// `(max_retries, timeout_ticks)` for the application phase — the
/// reliability extension evaluated by EXP-12.
#[allow(clippy::too_many_arguments)]
pub fn run_dandc_physical_with(
    deployment: Deployment,
    link: LinkModel,
    threshold: f64,
    field: &Field,
    seed: u64,
    implementation: Implementation,
    arq: Option<(u32, u64)>,
) -> (DandcOutcome, PhysicalReports) {
    let side = deployment.grid().cells_per_side();
    assert_eq!(field.side(), side, "field must cover the virtual grid");
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    let field = field.clone();
    let mut rt: PhysicalRuntime<DandcMsg> = PhysicalRuntime::new(
        deployment,
        RadioModel::uniform(range),
        LinkModel::ideal(),
        None,
        1,
        seed,
        move |c| field.value(c),
    );
    let topo = rt.run_topology_emulation();
    let bind = rt.run_binding();
    rt.install_programs(make_factory(implementation, side, threshold));
    rt.set_link_model(link);
    if let Some((max_retries, timeout_ticks)) = arq {
        rt.enable_arq(max_retries, timeout_ticks);
    }
    let app = rt.run_application();
    let metrics = rt.metrics(&app);
    let exfil = rt.take_exfiltrated();
    (
        DandcOutcome {
            exfil_count: exfil.len(),
            summary: exfil
                .into_iter()
                .next()
                .map(|e| e.payload.data.expect_complete().clone()),
            metrics,
        },
        PhysicalReports { topo, bind, app },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldSpec;
    use crate::regions::label_regions;
    use wsn_net::DeploymentSpec;

    fn blob_field(side: u32, seed: u64) -> Field {
        Field::generate(
            FieldSpec::Blobs {
                count: 3,
                amplitude: 10.0,
                radius: 2.0,
            },
            side,
            seed,
        )
    }

    #[test]
    fn native_vm_run_matches_ground_truth() {
        for side in [2u32, 4, 8, 16] {
            let field = blob_field(side, side as u64);
            let out = run_dandc_vm(side, &field, 5.0, 1, Implementation::Native);
            assert_eq!(out.exfil_count, 1, "side {side}");
            let summary = out.summary.unwrap();
            let truth = label_regions(&field.threshold(5.0));
            assert_eq!(summary.region_count(), truth.region_count(), "side {side}");
        }
    }

    #[test]
    fn synthesized_equals_native_exactly() {
        for (side, seed) in [(4u32, 1u64), (8, 2), (16, 3)] {
            let field = Field::generate(
                FieldSpec::RandomCells {
                    p: 0.45,
                    hot: 1.0,
                    cold: 0.0,
                },
                side,
                seed,
            );
            let native = run_dandc_vm(side, &field, 0.5, 9, Implementation::Native);
            let synth = run_dandc_vm(side, &field, 0.5, 9, Implementation::Synthesized);
            assert_eq!(native.summary, synth.summary, "side {side} seed {seed}");
            assert_eq!(native.exfil_count, synth.exfil_count);
            // Same traffic shape: identical message counts and energy.
            assert_eq!(native.metrics.messages, synth.metrics.messages);
            assert_eq!(native.metrics.data_units, synth.metrics.data_units);
            assert!((native.metrics.total_energy - synth.metrics.total_energy).abs() < 1e-9);
            assert_eq!(native.metrics.latency_ticks, synth.metrics.latency_ticks);
        }
    }

    #[test]
    fn native_run_observes_merge_completions() {
        let side = 4u32;
        let field = blob_field(side, 2);
        let f = field.clone();
        let mut vm: Vm<DandcMsg> = Vm::new(
            side,
            CostModel::uniform(),
            1,
            move |c| f.value(c),
            make_factory(Implementation::Native, side, 5.0),
        );
        vm.run();
        // 4×4 grid: level 1 completes 4 quadrant merges, level 2 (root) 1.
        let h1 = vm
            .stats()
            .histogram("merge.level1.complete")
            .expect("level-1 merges observed");
        assert_eq!(h1.count(), 4);
        let h2 = vm
            .stats()
            .histogram("merge.level2.complete")
            .expect("root merge observed");
        assert_eq!(h2.count(), 1);
        assert!(h2.max() >= h1.max(), "the root completes last");
    }

    #[test]
    fn trivial_grid_exfiltrates_leaf() {
        let field = Field::generate(FieldSpec::Uniform(9.0), 1, 1);
        let out = run_dandc_vm(1, &field, 5.0, 1, Implementation::Native);
        assert_eq!(out.exfil_count, 1);
        assert_eq!(out.summary.unwrap().region_count(), 1);
    }

    #[test]
    fn physical_run_agrees_with_vm_result() {
        let side = 4u32;
        let field = blob_field(side, 7);
        let vm_out = run_dandc_vm(side, &field, 5.0, 1, Implementation::Native);
        let deployment = DeploymentSpec::per_cell(side, 3).generate(5);
        let (phys_out, reports) = run_dandc_physical(
            deployment,
            LinkModel::ideal(),
            5.0,
            &field,
            5,
            Implementation::Native,
        );
        assert!(reports.topo.complete);
        assert!(reports.bind.unique);
        assert_eq!(phys_out.exfil_count, 1);
        assert_eq!(
            phys_out.summary, vm_out.summary,
            "same result at both levels"
        );
        // But the physical run pays more: protocol energy + multi-hop cells.
        assert!(phys_out.metrics.total_energy > vm_out.metrics.total_energy);
        assert!(phys_out.metrics.latency_ticks >= vm_out.metrics.latency_ticks);
    }

    #[test]
    fn physical_synthesized_also_agrees() {
        let side = 4u32;
        let field = blob_field(side, 11);
        let deployment = DeploymentSpec::per_cell(side, 2).generate(13);
        let (a, _) = run_dandc_physical(
            deployment.clone(),
            LinkModel::ideal(),
            5.0,
            &field,
            5,
            Implementation::Synthesized,
        );
        let truth = label_regions(&field.threshold(5.0));
        assert_eq!(a.summary.unwrap().region_count(), truth.region_count());
    }

    #[test]
    fn lossy_network_can_stall_without_wrong_answers() {
        let side = 8u32;
        let field = blob_field(side, 3);
        let deployment = DeploymentSpec::per_cell(side, 2).generate(21);
        let (out, _) = run_dandc_physical(
            deployment,
            LinkModel::lossy(0.25, 2),
            5.0,
            &field,
            7,
            Implementation::Native,
        );
        // With 25% loss the merge tree usually stalls; whatever is
        // exfiltrated must still be a valid summary (never a corrupt one).
        if let Some(summary) = out.summary {
            assert_eq!(summary.side, side);
        } else {
            assert_eq!(out.exfil_count, 0);
        }
    }
}
