//! Wire encoding of region summaries onto the certified fixed frame.
//!
//! [`DandcMsg`](crate::DandcMsg) (`SummaryMsg<RegionSummary>`) is the
//! only variable-size
//! payload the case study puts on the air, so it is the payload the
//! frame-layout certifier's byte bounds are about:
//! `wsn_core::summary_wire_bound_bytes(s)` is exactly the worst case of
//! this encoding over an `s × s` extent. `SummaryMsg` contributes its
//! 16-byte header (implemented in `wsn-synth`, where the type lives);
//! this module supplies the [`RegionSummary`] section, mirroring the
//! bound's remaining terms:
//!
//! * 24-byte boundary header — region kind, origin cell, extent side,
//!   three section lengths;
//! * 4 bytes per border cell (class id, `u32::MAX` = not a feature cell);
//! * 8 bytes per open class area;
//! * 8 bytes per closed region area.
//!
//! Only [`RegionSummary::Complete`] travels: `Partial` is a leader-local
//! accumulator that never reaches a send site (the certifier proves this
//! — diagnostic `FL003` otherwise), so encoding one is a
//! [`WireError::Unrepresentable`].

use crate::boundary::BoundarySummary;
use crate::merge::RegionSummary;
use wsn_core::GridCoord;
use wsn_net::{WireError, WirePayload};

const BOUNDARY_HEADER_BYTES: usize = 24;
/// Border entry sentinel for "not a feature cell".
const NO_CLASS: u32 = u32::MAX;
/// Region kind byte: a complete (mergeable) summary.
const KIND_COMPLETE: u8 = 1;

fn put_u32(out: &mut [u8], offset: usize, value: u32) {
    out[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
}

fn put_u16(out: &mut [u8], offset: usize, value: u16) {
    out[offset..offset + 2].copy_from_slice(&value.to_le_bytes());
}

fn put_u64(out: &mut [u8], offset: usize, value: u64) {
    out[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
}

fn get_u32(bytes: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap())
}

fn get_u16(bytes: &[u8], offset: usize) -> u16 {
    u16::from_le_bytes(bytes[offset..offset + 2].try_into().unwrap())
}

fn get_u64(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(bytes[offset..offset + 8].try_into().unwrap())
}

/// Exact wire size of a complete summary's section.
fn boundary_bytes(summary: &BoundarySummary) -> usize {
    BOUNDARY_HEADER_BYTES
        + summary.border().len() * 4
        + (summary.open_areas().len() + summary.closed_areas().len()) * 8
}

impl WirePayload for RegionSummary {
    fn encoded_bytes(&self) -> usize {
        match self {
            RegionSummary::Complete(s) => boundary_bytes(s),
            // Unencodable; encode() refuses before sizing matters.
            RegionSummary::Partial(_) => BOUNDARY_HEADER_BYTES,
        }
    }

    fn encode(&self, out: &mut [u8]) -> Result<usize, WireError> {
        let summary = match self {
            RegionSummary::Complete(s) => s,
            RegionSummary::Partial(_) => {
                return Err(WireError::Unrepresentable(
                    "RegionSummary::Partial is a leader-local accumulator with no wire form",
                ))
            }
        };
        let needed = boundary_bytes(summary);
        if out.len() < needed {
            return Err(WireError::Overflow {
                needed,
                capacity: out.len(),
            });
        }
        out[..BOUNDARY_HEADER_BYTES].fill(0);
        out[0] = KIND_COMPLETE;
        put_u32(out, 4, summary.origin.col);
        put_u32(out, 8, summary.origin.row);
        put_u32(out, 12, summary.side);
        put_u16(out, 16, summary.border().len() as u16);
        put_u16(out, 18, summary.open_areas().len() as u16);
        put_u16(out, 20, summary.closed_areas().len() as u16);
        let mut at = BOUNDARY_HEADER_BYTES;
        for entry in summary.border() {
            put_u32(out, at, entry.unwrap_or(NO_CLASS));
            at += 4;
        }
        for &area in summary.open_areas() {
            put_u64(out, at, area);
            at += 8;
        }
        for &area in summary.closed_areas() {
            put_u64(out, at, area);
            at += 8;
        }
        debug_assert_eq!(at, needed);
        Ok(needed)
    }

    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < BOUNDARY_HEADER_BYTES {
            return Err(WireError::Truncated("boundary header"));
        }
        if bytes[0] != KIND_COMPLETE {
            return Err(WireError::Unrepresentable("unknown region-summary kind"));
        }
        let origin = GridCoord::new(get_u32(bytes, 4), get_u32(bytes, 8));
        let side = get_u32(bytes, 12);
        let border_len = usize::from(get_u16(bytes, 16));
        let open_len = usize::from(get_u16(bytes, 18));
        let closed_len = usize::from(get_u16(bytes, 20));
        let needed = BOUNDARY_HEADER_BYTES + border_len * 4 + (open_len + closed_len) * 8;
        if bytes.len() < needed {
            return Err(WireError::Truncated("boundary sections"));
        }
        let mut at = BOUNDARY_HEADER_BYTES;
        let mut border = Vec::with_capacity(border_len);
        for _ in 0..border_len {
            let raw = get_u32(bytes, at);
            border.push((raw != NO_CLASS).then_some(raw));
            at += 4;
        }
        let mut open_areas = Vec::with_capacity(open_len);
        for _ in 0..open_len {
            open_areas.push(get_u64(bytes, at));
            at += 8;
        }
        let mut closed_areas = Vec::with_capacity(closed_len);
        for _ in 0..closed_len {
            closed_areas.push(get_u64(bytes, at));
            at += 8;
        }
        Ok(RegionSummary::Complete(BoundarySummary::from_wire_parts(
            origin,
            side,
            border,
            open_areas,
            closed_areas,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dandc::DandcMsg;
    use crate::field::{Field, FieldSpec};
    use wsn_core::summary_wire_bound_bytes;
    use wsn_synth::SummaryMsg;

    fn map_summary(side: u32, seed: u64) -> BoundarySummary {
        let map = Field::generate(
            FieldSpec::RandomCells {
                p: 0.45,
                hot: 10.0,
                cold: 0.0,
            },
            side,
            seed,
        )
        .threshold(5.0);
        BoundarySummary::from_feature_map(&map, GridCoord::new(0, 0), side)
    }

    fn msg(summary: BoundarySummary, level: u8) -> DandcMsg {
        SummaryMsg {
            sender: GridCoord::new(1, 2),
            level,
            data: RegionSummary::Complete(summary),
        }
    }

    #[test]
    fn summaries_round_trip_and_respect_the_certified_bound() {
        for side in [1u32, 2, 4, 8, 16] {
            for seed in 0..4 {
                let m = msg(map_summary(side, seed), side.trailing_zeros() as u8);
                let mut buf = vec![0u8; m.encoded_bytes()];
                let written = m.encode(&mut buf).unwrap();
                assert_eq!(written, m.encoded_bytes());
                assert!(
                    written as u64 <= summary_wire_bound_bytes(side),
                    "side {side} seed {seed}: {written} bytes exceeds the closed-form bound"
                );
                assert_eq!(DandcMsg::decode(&buf).unwrap(), m);
            }
        }
    }

    #[test]
    fn partial_summaries_have_no_wire_form() {
        let m = SummaryMsg {
            sender: GridCoord::new(0, 0),
            level: 1,
            data: RegionSummary::Partial(vec![map_summary(2, 0)]),
        };
        let mut buf = vec![0u8; 256];
        assert!(matches!(
            m.encode(&mut buf),
            Err(WireError::Unrepresentable(_))
        ));
    }

    #[test]
    fn undersized_buffers_and_truncated_bytes_refuse() {
        let m = msg(map_summary(4, 7), 2);
        let mut small = vec![0u8; m.encoded_bytes() - 1];
        assert!(matches!(
            m.encode(&mut small),
            Err(WireError::Overflow { .. })
        ));
        let mut buf = vec![0u8; m.encoded_bytes()];
        m.encode(&mut buf).unwrap();
        assert!(matches!(
            DandcMsg::decode(&buf[..buf.len() - 1]),
            Err(WireError::Truncated(_))
        ));
    }

    #[test]
    fn whole_messages_fit_the_frame_at_certified_sides() {
        use wsn_net::FrameBuf;
        let m = msg(map_summary(16, 3), 4);
        let frame = FrameBuf::encode_payload(&m).unwrap();
        let back: DandcMsg = frame.decode_payload().unwrap();
        assert_eq!(back, m);
    }
}
