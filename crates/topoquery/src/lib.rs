//! # wsn-topoquery — the topographic-querying case study (§3–4)
//!
//! Identification and labeling of homogeneous regions: synthetic scalar
//! fields ([`field`]), ground-truth connected-component labeling
//! ([`regions`]), boundary summaries and the 4-way quadrant merge
//! ([`boundary`], [`merge`]), the in-network divide-and-conquer program
//! (native and synthesized) with virtual-machine and physical drivers
//! ([`dandc`]), the centralized baseline ([`centralized`]), the
//! topographic queries answerable from the aggregated result
//! ([`queries`]), the differential chaos fuzzer that checks the
//! self-healing runtime against the centralized oracle ([`chaos`]), and
//! the bounded frame encoding of the summary messages ([`wirecodec`])
//! behind the certified zero-copy hot path.

#![forbid(unsafe_code)]

pub mod boundary;
pub mod centralized;
pub mod chaos;
pub mod dandc;
pub mod field;
pub mod merge;
pub mod queries;
pub mod regions;
pub mod viz;
pub mod wirecodec;

pub use boundary::{merge_four, BoundarySummary};
pub use centralized::{
    run_centralized_vm, run_synthesized_gather_vm, CentralMsg, CentralizedOutcome,
    CentralizedProgram, GatherSemantics,
};
pub use chaos::{
    run_scenario, run_scenario_with_plan, shrink_plan, ChaosScenario, ChaosVerdict, ScenarioOutcome,
};
pub use dandc::{
    run_dandc_physical, run_dandc_physical_with, run_dandc_vm, run_dandc_vm_with_cost, DandcMsg,
    DandcOutcome, DandcProgram, Implementation, PhysicalReports,
};
pub use field::{FeatureMap, Field, FieldSpec};
pub use merge::{merge_pieces, RegionSemantics, RegionSummary};
pub use regions::{label_regions, RegionLabeling};
pub use viz::{render_feature_map, render_field, render_labeling};
