//! The application payload and merge semantics plugged into the
//! synthesized program.
//!
//! §4.3: "since the information represents region boundaries, it can be
//! incrementally merged into the existing aggregated information at that
//! leader." A leader's accumulator ([`RegionSummary::Partial`]) absorbs
//! child summaries in whatever order the asynchronous network delivers
//! them; the fourth arrival completes the quadrant set and collapses the
//! accumulator into the merged [`BoundarySummary`] of the doubled extent.

use crate::boundary::{merge_four, BoundarySummary};
use wsn_core::GridCoord;
use wsn_synth::SummarySemantics;

/// The opaque summary datum carried by the synthesized program.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionSummary {
    /// A finished summary of one square extent.
    Complete(BoundarySummary),
    /// A leader's in-progress accumulation of child quadrant summaries
    /// (1–3 pieces; the fourth completes it).
    Partial(Vec<BoundarySummary>),
}

impl RegionSummary {
    /// Size in cost-model data units. Only complete summaries travel, so
    /// this is [`BoundarySummary::units`] in practice; a partial's size is
    /// defined as the sum of its pieces for diagnostic completeness.
    pub fn units(&self) -> u64 {
        match self {
            RegionSummary::Complete(s) => s.units(),
            RegionSummary::Partial(pieces) => pieces.iter().map(BoundarySummary::units).sum(),
        }
    }

    /// The finished summary; panics on an unfinished accumulator.
    pub fn expect_complete(&self) -> &BoundarySummary {
        match self {
            RegionSummary::Complete(s) => s,
            RegionSummary::Partial(p) => {
                panic!("expected a complete summary, found {} pieces", p.len())
            }
        }
    }
}

/// Orders four quadrant summaries into NW, NE, SW, SE and merges them.
pub fn merge_pieces(mut pieces: Vec<BoundarySummary>) -> BoundarySummary {
    assert_eq!(
        pieces.len(),
        4,
        "a quadrant merge needs exactly four pieces"
    );
    let min_col = pieces
        .iter()
        .map(|p| p.origin.col)
        .min()
        .expect("non-empty");
    let min_row = pieces
        .iter()
        .map(|p| p.origin.row)
        .min()
        .expect("non-empty");
    pieces.sort_by_key(|p| (p.origin.row > min_row, p.origin.col > min_col));
    let [nw, ne, sw, se]: [BoundarySummary; 4] = pieces.try_into().expect("length checked above");
    merge_four(&[nw, ne, sw, se])
}

/// The [`SummarySemantics`] wiring [`RegionSummary`] into the synthesized
/// Figure-4 program.
pub struct RegionSemantics {
    /// Feature threshold applied to sensor readings.
    pub threshold: f64,
}

impl SummarySemantics for RegionSemantics {
    type Data = RegionSummary;

    fn local_summary(&self, coord: GridCoord, reading: f64) -> RegionSummary {
        RegionSummary::Complete(BoundarySummary::leaf(coord, reading >= self.threshold))
    }

    fn merge(&self, acc: Option<RegionSummary>, incoming: &RegionSummary) -> RegionSummary {
        let piece = incoming.expect_complete().clone();
        let mut pieces = match acc {
            None => Vec::with_capacity(4),
            Some(RegionSummary::Partial(p)) => p,
            Some(RegionSummary::Complete(_)) => {
                panic!("merging into an already-completed summary")
            }
        };
        pieces.push(piece);
        if pieces.len() == 4 {
            RegionSummary::Complete(merge_pieces(pieces))
        } else {
            RegionSummary::Partial(pieces)
        }
    }

    fn units(&self, data: &RegionSummary) -> u64 {
        data.units()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FeatureMap;

    fn leaf(col: u32, row: u32, feature: bool) -> BoundarySummary {
        BoundarySummary::leaf(GridCoord::new(col, row), feature)
    }

    #[test]
    fn merge_pieces_handles_any_arrival_order() {
        let quads = [
            leaf(0, 0, true),
            leaf(1, 0, true),
            leaf(0, 1, false),
            leaf(1, 1, false),
        ];
        let reference = merge_four(&quads.clone());
        // All 24 permutations must give the same merged summary.
        let perms = [
            [0, 1, 2, 3],
            [3, 2, 1, 0],
            [1, 3, 0, 2],
            [2, 0, 3, 1],
            [0, 2, 1, 3],
            [3, 0, 2, 1],
        ];
        for perm in perms {
            let pieces: Vec<BoundarySummary> = perm.iter().map(|&i| quads[i].clone()).collect();
            assert_eq!(merge_pieces(pieces), reference, "perm {perm:?}");
        }
    }

    #[test]
    fn semantics_accumulates_then_completes() {
        let sem = RegionSemantics { threshold: 0.5 };
        let mut acc: Option<RegionSummary> = None;
        let quads = [
            leaf(0, 0, true),
            leaf(1, 0, false),
            leaf(0, 1, true),
            leaf(1, 1, true),
        ];
        for (i, q) in quads.iter().enumerate() {
            let incoming = RegionSummary::Complete(q.clone());
            let merged = sem.merge(acc.take(), &incoming);
            if i < 3 {
                assert!(matches!(merged, RegionSummary::Partial(ref p) if p.len() == i + 1));
            } else {
                let complete = merged.expect_complete().clone();
                assert_eq!(complete.side, 2);
                // (0,0),(0,1),(1,1) connect; (1,0) missing → 1 region.
                assert_eq!(complete.region_count(), 1);
                assert_eq!(complete.feature_area(), 3);
                return;
            }
            acc = Some(merged);
        }
        unreachable!();
    }

    #[test]
    fn local_summary_applies_threshold() {
        let sem = RegionSemantics { threshold: 2.0 };
        let hot = sem.local_summary(GridCoord::new(0, 0), 2.0);
        assert_eq!(hot.expect_complete().region_count(), 1);
        let cold = sem.local_summary(GridCoord::new(0, 0), 1.99);
        assert_eq!(cold.expect_complete().region_count(), 0);
    }

    #[test]
    fn units_of_complete_match_boundary_units() {
        let map = FeatureMap::from_fn(2, |_| true);
        let s = BoundarySummary::from_feature_map(&map, GridCoord::new(0, 0), 2);
        let u = s.units();
        assert_eq!(RegionSummary::Complete(s).units(), u);
    }

    #[test]
    #[should_panic(expected = "expected a complete summary")]
    fn partial_cannot_pose_as_complete() {
        RegionSummary::Partial(vec![leaf(0, 0, true)]).expect_complete();
    }

    #[test]
    #[should_panic(expected = "exactly four pieces")]
    fn merge_pieces_rejects_wrong_count() {
        merge_pieces(vec![leaf(0, 0, true)]);
    }
}
