//! Synthetic phenomenon fields.
//!
//! The paper's application monitors "the temperature over the entire
//! terrain with a certain granularity" (§3.2); we have no instrumented
//! terrain, so fields are generated synthetically (see DESIGN.md §2,
//! "phenomenon substitution"). A [`Field`] assigns a scalar reading to
//! each point of coverage; thresholding yields the binary [`FeatureMap`]
//! the algorithm actually works on ("for simplicity we assume that a
//! sensor node has a binary status", §3.1).

use serde::{Deserialize, Serialize};
use wsn_core::GridCoord;
use wsn_sim::DetRng;

/// A generator recipe for scalar fields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FieldSpec {
    /// The same reading everywhere.
    Uniform(f64),
    /// Linear west→east gradient from `west` to `east`.
    Gradient {
        /// Reading at column 0.
        west: f64,
        /// Reading at the last column.
        east: f64,
    },
    /// `count` Gaussian bumps of the given `amplitude` and `radius`
    /// (in cells) at random centers, on a zero background.
    Blobs {
        /// Number of bumps.
        count: usize,
        /// Peak height of each bump.
        amplitude: f64,
        /// Standard deviation in cells.
        radius: f64,
    },
    /// Independent per-cell readings: `hot` with probability `p`, else
    /// `cold`. Produces fragmented feature maps — the merge stress test.
    RandomCells {
        /// Probability a cell reads `hot`.
        p: f64,
        /// Hot reading.
        hot: f64,
        /// Cold reading.
        cold: f64,
    },
}

/// A concrete scalar field over a `side × side` grid of points of
/// coverage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field {
    side: u32,
    values: Vec<f64>,
}

impl Field {
    /// Generates the field for `spec`, deterministically from `seed`.
    pub fn generate(spec: FieldSpec, side: u32, seed: u64) -> Self {
        assert!(side > 0);
        let n = (side as usize).pow(2);
        let mut rng = DetRng::stream(seed, 0xF1E1D);
        let mut values = vec![0.0; n];
        match spec {
            FieldSpec::Uniform(v) => values.fill(v),
            FieldSpec::Gradient { west, east } => {
                for row in 0..side {
                    for col in 0..side {
                        let t = if side == 1 {
                            0.0
                        } else {
                            f64::from(col) / f64::from(side - 1)
                        };
                        values[(row * side + col) as usize] = west + (east - west) * t;
                    }
                }
            }
            FieldSpec::Blobs {
                count,
                amplitude,
                radius,
            } => {
                let centers: Vec<(f64, f64)> = (0..count)
                    .map(|_| {
                        (
                            rng.range_f64(0.0, f64::from(side)),
                            rng.range_f64(0.0, f64::from(side)),
                        )
                    })
                    .collect();
                for row in 0..side {
                    for col in 0..side {
                        let (x, y) = (f64::from(col) + 0.5, f64::from(row) + 0.5);
                        let v: f64 = centers
                            .iter()
                            .map(|&(cx, cy)| {
                                let d2 = (x - cx).powi(2) + (y - cy).powi(2);
                                amplitude * (-d2 / (2.0 * radius * radius)).exp()
                            })
                            .sum();
                        values[(row * side + col) as usize] = v;
                    }
                }
            }
            FieldSpec::RandomCells { p, hot, cold } => {
                for v in &mut values {
                    *v = if rng.chance(p) { hot } else { cold };
                }
            }
        }
        Field { side, values }
    }

    /// Builds a field from an explicit reading function (custom phenomena
    /// such as moving fronts; the generators cover the common cases).
    pub fn from_fn(side: u32, f: impl Fn(GridCoord) -> f64) -> Self {
        assert!(side > 0);
        let mut values = Vec::with_capacity((side as usize).pow(2));
        for row in 0..side {
            for col in 0..side {
                values.push(f(GridCoord::new(col, row)));
            }
        }
        Field { side, values }
    }

    /// Grid side.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Reading at `c`.
    pub fn value(&self, c: GridCoord) -> f64 {
        assert!(
            c.col < self.side && c.row < self.side,
            "{c:?} outside field"
        );
        self.values[(c.row * self.side + c.col) as usize]
    }

    /// The binary feature map for a threshold ("a leaf node can compute
    /// its status as a feature node by comparing its current reading with
    /// a pre-specified threshold", §4.1).
    pub fn threshold(&self, threshold: f64) -> FeatureMap {
        FeatureMap {
            side: self.side,
            bits: self.values.iter().map(|&v| v >= threshold).collect(),
        }
    }
}

/// The binary feature status of every point of coverage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureMap {
    side: u32,
    bits: Vec<bool>,
}

impl FeatureMap {
    /// Builds a map from a predicate.
    pub fn from_fn(side: u32, f: impl Fn(GridCoord) -> bool) -> Self {
        let mut bits = Vec::with_capacity((side as usize).pow(2));
        for row in 0..side {
            for col in 0..side {
                bits.push(f(GridCoord::new(col, row)));
            }
        }
        FeatureMap { side, bits }
    }

    /// Grid side.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Whether `c` is a feature node.
    pub fn is_feature(&self, c: GridCoord) -> bool {
        assert!(c.col < self.side && c.row < self.side, "{c:?} outside map");
        self.bits[(c.row * self.side + c.col) as usize]
    }

    /// Fraction of feature nodes.
    pub fn density(&self) -> f64 {
        if self.bits.is_empty() {
            0.0
        } else {
            self.bits.iter().filter(|&&b| b).count() as f64 / self.bits.len() as f64
        }
    }

    /// Number of feature nodes.
    pub fn feature_count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_field_is_flat() {
        let f = Field::generate(FieldSpec::Uniform(3.5), 4, 1);
        for row in 0..4 {
            for col in 0..4 {
                assert_eq!(f.value(GridCoord::new(col, row)), 3.5);
            }
        }
        assert_eq!(f.threshold(3.0).density(), 1.0);
        assert_eq!(f.threshold(4.0).density(), 0.0);
    }

    #[test]
    fn gradient_is_monotone_in_columns() {
        let f = Field::generate(
            FieldSpec::Gradient {
                west: 0.0,
                east: 10.0,
            },
            8,
            1,
        );
        assert_eq!(f.value(GridCoord::new(0, 3)), 0.0);
        assert_eq!(f.value(GridCoord::new(7, 3)), 10.0);
        for col in 1..8 {
            assert!(f.value(GridCoord::new(col, 0)) > f.value(GridCoord::new(col - 1, 0)));
        }
        // Thresholding a gradient yields a half-plane.
        let map = f.threshold(5.0);
        for row in 0..8 {
            for col in 0..8 {
                assert_eq!(map.is_feature(GridCoord::new(col, row)), col >= 4);
            }
        }
    }

    #[test]
    fn blobs_peak_near_centers() {
        let f = Field::generate(
            FieldSpec::Blobs {
                count: 3,
                amplitude: 10.0,
                radius: 2.0,
            },
            16,
            7,
        );
        let map = f.threshold(5.0);
        assert!(map.density() > 0.0, "some cells must exceed half-amplitude");
        assert!(map.density() < 1.0);
    }

    #[test]
    fn random_cells_hit_target_density() {
        let f = Field::generate(
            FieldSpec::RandomCells {
                p: 0.3,
                hot: 1.0,
                cold: 0.0,
            },
            32,
            9,
        );
        let d = f.threshold(0.5).density();
        assert!((d - 0.3).abs() < 0.06, "density {d}");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = FieldSpec::Blobs {
            count: 2,
            amplitude: 1.0,
            radius: 3.0,
        };
        assert_eq!(Field::generate(spec, 8, 5), Field::generate(spec, 8, 5));
        assert_ne!(Field::generate(spec, 8, 5), Field::generate(spec, 8, 6));
    }

    #[test]
    fn field_from_fn_matches_function() {
        let f = Field::from_fn(3, |c| f64::from(c.col * 10 + c.row));
        assert_eq!(f.value(GridCoord::new(2, 1)), 21.0);
        assert_eq!(f.side(), 3);
        assert_eq!(f.threshold(10.0).feature_count(), 6);
    }

    #[test]
    fn from_fn_and_counts() {
        let m = FeatureMap::from_fn(4, |c| c.col == c.row);
        assert_eq!(m.feature_count(), 4);
        assert_eq!(m.density(), 0.25);
        assert!(m.is_feature(GridCoord::new(2, 2)));
        assert!(!m.is_feature(GridCoord::new(2, 1)));
    }

    #[test]
    #[should_panic(expected = "outside field")]
    fn out_of_bounds_value_panics() {
        Field::generate(FieldSpec::Uniform(0.0), 2, 1).value(GridCoord::new(2, 0));
    }
}
