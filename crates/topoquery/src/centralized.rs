//! The centralized baseline: ship every reading to a sink, label there.
//!
//! This is the strawman the design flow weighs the divide-and-conquer
//! approach against (§2: "the end user could decide if a divide and
//! conquer approach is better than a centralized approach"). Every node
//! sends its binary feature status (one data unit) straight to the sink
//! at the origin, which reconstructs the feature map, runs the reference
//! labeling, and exfiltrates the answer.

use crate::field::{FeatureMap, Field};
use crate::regions::label_regions;
use wsn_core::{CostModel, GridCoord, NodeApi, NodeProgram, RunMetrics, Vm};

/// Messages of the centralized algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum CentralMsg {
    /// One node's feature status.
    Reading {
        /// Where it was sampled.
        coord: GridCoord,
        /// Thresholded status.
        feature: bool,
    },
    /// The sink's final answer.
    Result {
        /// Number of homogeneous feature regions.
        regions: u32,
        /// Total feature area.
        area: u64,
    },
}

/// The per-node program of the centralized baseline.
pub struct CentralizedProgram {
    sink: GridCoord,
    side: u32,
    threshold: f64,
    received: Vec<(GridCoord, bool)>,
}

impl CentralizedProgram {
    /// A program instance for one node of a `side × side` grid.
    pub fn new(side: u32, threshold: f64) -> Self {
        CentralizedProgram {
            sink: GridCoord::new(0, 0),
            side,
            threshold,
            received: Vec::new(),
        }
    }

    fn absorb(&mut self, api: &mut dyn NodeApi<CentralMsg>, coord: GridCoord, feature: bool) {
        self.received.push((coord, feature));
        if self.received.len() == (self.side as usize).pow(2) {
            // Reconstruct the map and label it centrally.
            let received = std::mem::take(&mut self.received);
            let side = self.side;
            let map = FeatureMap::from_fn(side, |c| received.iter().any(|&(rc, f)| rc == c && f));
            api.compute(u64::from(side) * u64::from(side));
            let labeling = label_regions(&map);
            api.exfiltrate(CentralMsg::Result {
                regions: labeling.region_count() as u32,
                area: u64::from(labeling.areas().iter().sum::<u32>()),
            });
        }
    }
}

impl NodeProgram<CentralMsg> for CentralizedProgram {
    fn on_init(&mut self, api: &mut dyn NodeApi<CentralMsg>) {
        let feature = api.read_sensor() >= self.threshold;
        api.compute(1);
        let me = api.coord();
        if me == self.sink {
            self.absorb(api, me, feature);
        } else {
            api.send(self.sink, 1, CentralMsg::Reading { coord: me, feature });
        }
    }

    fn on_receive(&mut self, api: &mut dyn NodeApi<CentralMsg>, _from: GridCoord, msg: CentralMsg) {
        match msg {
            CentralMsg::Reading { coord, feature } => self.absorb(api, coord, feature),
            CentralMsg::Result { .. } => unreachable!("results are exfiltrated, not routed"),
        }
    }
}

/// Outcome of a centralized run.
#[derive(Debug, Clone, PartialEq)]
pub struct CentralizedOutcome {
    /// Region count computed at the sink.
    pub regions: u32,
    /// Total feature area.
    pub area: u64,
    /// The standard metric bundle.
    pub metrics: RunMetrics,
}

/// Runs the centralized baseline on the ideal virtual machine.
pub fn run_centralized_vm(
    side: u32,
    field: &Field,
    threshold: f64,
    seed: u64,
) -> CentralizedOutcome {
    let field = field.clone();
    let mut vm: Vm<CentralMsg> = Vm::new(
        side,
        CostModel::uniform(),
        seed,
        move |c| field.value(c),
        move |_| Box::new(CentralizedProgram::new(side, threshold)),
    );
    vm.run();
    let metrics = vm.metrics();
    let exfil = vm.take_exfiltrated();
    assert_eq!(exfil.len(), 1, "the sink exfiltrates exactly once");
    match exfil.into_iter().next().unwrap().payload {
        CentralMsg::Result { regions, area } => CentralizedOutcome {
            regions,
            area,
            metrics,
        },
        CentralMsg::Reading { .. } => unreachable!("sink exfiltrates results only"),
    }
}

/// Semantics plugging the *synthesized gather* program
/// ([`wsn_synth::synthesize_gather_program`]) into the interpreter: the
/// opaque datum is the bag of `(coord, feature)` readings collected so
/// far, merged by concatenation. Demonstrates that the synthesis pipeline
/// is algorithm-agnostic — the same IR and interpreter execute a star-
/// shaped gather as readily as the quad-tree merge.
pub struct GatherSemantics {
    /// Feature threshold applied at the leaves.
    pub threshold: f64,
}

impl wsn_synth::SummarySemantics for GatherSemantics {
    type Data = Vec<(GridCoord, bool)>;

    fn local_summary(&self, coord: GridCoord, reading: f64) -> Self::Data {
        vec![(coord, reading >= self.threshold)]
    }

    fn merge(&self, acc: Option<Self::Data>, incoming: &Self::Data) -> Self::Data {
        let mut bag = acc.unwrap_or_default();
        bag.extend_from_slice(incoming);
        bag
    }

    fn units(&self, data: &Self::Data) -> u64 {
        data.len() as u64
    }
}

/// Runs the synthesized gather program on the VM and labels the collected
/// map at the harness, mirroring [`run_centralized_vm`]'s outcome.
pub fn run_synthesized_gather_vm(
    side: u32,
    field: &Field,
    threshold: f64,
    seed: u64,
) -> CentralizedOutcome {
    use std::rc::Rc;
    let hierarchy = wsn_core::Hierarchy::new(side);
    let program = Rc::new(wsn_synth::synthesize_gather_program(
        hierarchy.max_level(),
        side,
    ));
    let semantics = Rc::new(GatherSemantics { threshold });
    let f = field.clone();
    let mut vm: wsn_core::Vm<wsn_synth::SummaryMsg<Vec<(GridCoord, bool)>>> = wsn_core::Vm::new(
        side,
        CostModel::uniform(),
        seed,
        move |c| f.value(c),
        move |_| {
            Box::new(wsn_synth::SynthesizedNode::new(
                program.clone(),
                semantics.clone(),
                side,
            ))
        },
    );
    vm.run();
    let metrics = vm.metrics();
    let exfil = vm.take_exfiltrated();
    assert_eq!(exfil.len(), 1, "the origin exfiltrates exactly once");
    let bag = exfil.into_iter().next().unwrap().payload.data;
    assert_eq!(bag.len(), (side as usize).pow(2), "all readings collected");
    let map = FeatureMap::from_fn(side, |c| bag.iter().any(|&(rc, f)| rc == c && f));
    let labeling = label_regions(&map);
    CentralizedOutcome {
        regions: labeling.region_count() as u32,
        area: u64::from(labeling.areas().iter().sum::<u32>()),
        metrics,
    }
}

// Payload discriminants for kernel traces.
impl wsn_sim::Payload for CentralMsg {
    fn discriminant(&self) -> u64 {
        match self {
            CentralMsg::Reading { .. } => 1,
            CentralMsg::Result { .. } => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dandc::{run_dandc_vm, Implementation};
    use crate::field::FieldSpec;
    use crate::regions::label_regions;

    fn field(side: u32, seed: u64) -> Field {
        Field::generate(
            FieldSpec::RandomCells {
                p: 0.4,
                hot: 1.0,
                cold: 0.0,
            },
            side,
            seed,
        )
    }

    #[test]
    fn centralized_matches_ground_truth() {
        for side in [2u32, 4, 8] {
            let f = field(side, 5);
            let out = run_centralized_vm(side, &f, 0.5, 1);
            let truth = label_regions(&f.threshold(0.5));
            assert_eq!(out.regions as usize, truth.region_count(), "side {side}");
            assert_eq!(out.area as usize, f.threshold(0.5).feature_count());
        }
    }

    #[test]
    fn centralized_and_dandc_agree_on_counts() {
        let side = 16;
        let f = field(side, 9);
        let central = run_centralized_vm(side, &f, 0.5, 1);
        let dandc = run_dandc_vm(side, &f, 0.5, 1, Implementation::Native);
        let summary = dandc.summary.unwrap();
        assert_eq!(central.regions as usize, summary.region_count());
        assert_eq!(central.area, summary.feature_area());
    }

    #[test]
    fn dandc_spends_less_energy_at_scale() {
        // The motivating trade-off: boundary summaries beat raw shipping.
        let side = 32;
        let f = Field::generate(
            FieldSpec::Blobs {
                count: 4,
                amplitude: 10.0,
                radius: 3.0,
            },
            side,
            3,
        );
        let central = run_centralized_vm(side, &f, 5.0, 1);
        let dandc = run_dandc_vm(side, &f, 5.0, 1, Implementation::Native);
        assert!(
            dandc.metrics.total_energy < central.metrics.total_energy,
            "D&C {} vs centralized {}",
            dandc.metrics.total_energy,
            central.metrics.total_energy
        );
    }

    #[test]
    fn synthesized_gather_matches_native_centralized() {
        for side in [2u32, 4, 8] {
            let f = field(side, 7);
            let native = run_centralized_vm(side, &f, 0.5, 1);
            let synth = run_synthesized_gather_vm(side, &f, 0.5, 1);
            assert_eq!(synth.regions, native.regions, "side {side}");
            assert_eq!(synth.area, native.area, "side {side}");
            // Traffic shape differs slightly (the synthesized program
            // grows the bag hop by hop through the group primitive's
            // direct send), but the message count matches: one per
            // non-origin node plus the origin's self-message.
            assert_eq!(synth.metrics.messages, native.metrics.messages + 1);
        }
    }

    #[test]
    fn centralized_latency_matches_estimator() {
        let side = 8u32;
        let f = field(side, 2);
        let out = run_centralized_vm(side, &f, 0.5, 1);
        let est = wsn_core::centralized_collection_estimate(side, &CostModel::uniform(), 1, 1, 1);
        assert_eq!(out.metrics.latency_ticks, est.latency_ticks);
        assert_eq!(out.metrics.messages, est.messages);
        // Energy: estimator charges sink compute 1/unit/reading; the
        // program charges side² once at the sink plus 1 per node on init —
        // identical totals.
        assert!((out.metrics.total_energy - est.total_energy).abs() < 1e-9);
    }

    #[test]
    fn sink_hotspot_is_severe() {
        let side = 8;
        let f = field(side, 4);
        let out = run_centralized_vm(side, &f, 0.5, 1);
        assert!(
            out.metrics.max_node_energy > 10.0 * out.metrics.mean_node_energy / 2.0,
            "sink should be a hotspot: max {} mean {}",
            out.metrics.max_node_energy,
            out.metrics.mean_node_energy
        );
    }
}
