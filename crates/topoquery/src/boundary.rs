//! Boundary summaries of feature regions within a square extent, and the
//! 4-way quadrant merge at the heart of the divide-and-conquer algorithm.
//!
//! §4.1: "At each level of hierarchy, a node receives data from its four
//! children, containing a description of the boundaries of feature regions
//! contained within the sender's geographic oversight. The boundary
//! information also indicates whether the feature region(s) lie entirely
//! within that extent, or information from neighboring extents is required
//! to identify the true boundary."
//!
//! Following Alnuweiri & Prasanna's parallel component labeling (the
//! paper's reference \[3\]), a summary of an `s × s` extent stores:
//!
//! * the feature status and region class of each of the `4s − 4` border
//!   cells (classes are the connected components of the extent restricted
//!   to classes that touch the border — the "open" regions whose true
//!   boundary may continue outside);
//! * the area of each open class;
//! * the count and areas of regions already *closed* (entirely interior —
//!   no further information can change them).
//!
//! Merging four child summaries unions classes across the two internal
//! seams, recomputes the border of the doubled extent, and closes every
//! class that no longer touches it. A summary's size is `O(s)` — that
//! compression is exactly why in-network merging beats shipping raw maps.

use crate::field::FeatureMap;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wsn_core::GridCoord;

/// A boundary summary of the feature regions in one square extent.
///
/// Equality is structural and summaries are kept in canonical form
/// (classes numbered by first appearance along the border walk, closed
/// areas sorted ascending), so two summaries of the same underlying map
/// compare equal regardless of how they were computed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundarySummary {
    /// North-west corner of the extent (absolute grid coordinates).
    pub origin: GridCoord,
    /// Extent side length.
    pub side: u32,
    /// Class of each border cell, clockwise from the NW corner
    /// (`None` = not a feature cell).
    border: Vec<Option<u32>>,
    /// Area of each open class, indexed by class.
    open_areas: Vec<u64>,
    /// Areas of closed (entirely interior) regions, ascending.
    closed_areas: Vec<u64>,
}

/// Relative coordinates of the perimeter cells of an `s × s` extent,
/// clockwise from the NW corner.
pub(crate) fn perimeter_cells(side: u32) -> Vec<(u32, u32)> {
    assert!(side > 0);
    if side == 1 {
        return vec![(0, 0)];
    }
    let s = side;
    let mut cells = Vec::with_capacity((4 * s - 4) as usize);
    for col in 0..s {
        cells.push((col, 0));
    }
    for row in 1..s {
        cells.push((s - 1, row));
    }
    for col in (0..s - 1).rev() {
        cells.push((col, s - 1));
    }
    for row in (1..s - 1).rev() {
        cells.push((0, row));
    }
    cells
}

impl BoundarySummary {
    /// The level-0 summary of a single cell.
    pub fn leaf(origin: GridCoord, is_feature: bool) -> Self {
        if is_feature {
            BoundarySummary {
                origin,
                side: 1,
                border: vec![Some(0)],
                open_areas: vec![1],
                closed_areas: vec![],
            }
        } else {
            BoundarySummary {
                origin,
                side: 1,
                border: vec![None],
                open_areas: vec![],
                closed_areas: vec![],
            }
        }
    }

    /// Reference (specification) construction: summarizes the extent
    /// directly from the full feature map. The distributed merge must
    /// produce exactly this (see the property tests).
    pub fn from_feature_map(map: &FeatureMap, origin: GridCoord, side: u32) -> Self {
        assert!(origin.col + side <= map.side() && origin.row + side <= map.side());
        // Label components within the extent (4-connectivity, extent-local).
        let idx = |col: u32, row: u32| (row * side + col) as usize;
        let mut comp: Vec<Option<u32>> = vec![None; (side * side) as usize];
        let mut comp_area: Vec<u64> = Vec::new();
        for row in 0..side {
            for col in 0..side {
                let abs = GridCoord::new(origin.col + col, origin.row + row);
                if !map.is_feature(abs) || comp[idx(col, row)].is_some() {
                    continue;
                }
                let id = comp_area.len() as u32;
                comp_area.push(0);
                let mut queue = std::collections::VecDeque::from([(col, row)]);
                comp[idx(col, row)] = Some(id);
                while let Some((c, r)) = queue.pop_front() {
                    comp_area[id as usize] += 1;
                    let neighbors = [
                        (c.wrapping_sub(1), r),
                        (c + 1, r),
                        (c, r.wrapping_sub(1)),
                        (c, r + 1),
                    ];
                    for (nc, nr) in neighbors {
                        if nc >= side || nr >= side {
                            continue;
                        }
                        let abs = GridCoord::new(origin.col + nc, origin.row + nr);
                        if map.is_feature(abs) && comp[idx(nc, nr)].is_none() {
                            comp[idx(nc, nr)] = Some(id);
                            queue.push_back((nc, nr));
                        }
                    }
                }
            }
        }
        // Classes: components touching the perimeter, numbered by first
        // appearance along the walk.
        let perim = perimeter_cells(side);
        let mut class_of_comp: HashMap<u32, u32> = HashMap::new();
        let mut open_areas = Vec::new();
        let mut border = Vec::with_capacity(perim.len());
        for &(c, r) in &perim {
            let entry = comp[idx(c, r)].map(|comp_id| {
                *class_of_comp.entry(comp_id).or_insert_with(|| {
                    open_areas.push(comp_area[comp_id as usize]);
                    (open_areas.len() - 1) as u32
                })
            });
            border.push(entry);
        }
        // Closed: components not touching the perimeter.
        let mut closed_areas: Vec<u64> = (0..comp_area.len() as u32)
            .filter(|id| !class_of_comp.contains_key(id))
            .map(|id| comp_area[id as usize])
            .collect();
        closed_areas.sort_unstable();
        BoundarySummary {
            origin,
            side,
            border,
            open_areas,
            closed_areas,
        }
    }

    /// Number of open classes (regions whose boundary may continue outside
    /// this extent).
    pub fn open_class_count(&self) -> usize {
        self.open_areas.len()
    }

    /// Number of closed (entirely interior) regions.
    pub fn closed_region_count(&self) -> usize {
        self.closed_areas.len()
    }

    /// Areas of the closed regions, ascending.
    pub fn closed_areas(&self) -> &[u64] {
        &self.closed_areas
    }

    /// Areas of the open classes, by class id.
    pub fn open_areas(&self) -> &[u64] {
        &self.open_areas
    }

    /// Class of each border cell, clockwise from the NW corner (`None` =
    /// not a feature cell) — the border walk the wire codec serializes.
    pub fn border(&self) -> &[Option<u32>] {
        &self.border
    }

    /// Reassembles a summary from its wire-decoded parts. The parts must
    /// come from [`Self::border`]/[`Self::open_areas`]/[`Self::closed_areas`]
    /// of a canonical summary — the constructor checks the structural
    /// invariants (border length matches the perimeter, class ids index
    /// `open_areas`) and panics otherwise, so a corrupted frame fails loud
    /// rather than yielding a silently wrong summary.
    pub fn from_wire_parts(
        origin: GridCoord,
        side: u32,
        border: Vec<Option<u32>>,
        open_areas: Vec<u64>,
        closed_areas: Vec<u64>,
    ) -> Self {
        assert_eq!(
            border.len(),
            perimeter_cells(side).len(),
            "border walk length does not match the extent perimeter"
        );
        assert!(
            border
                .iter()
                .flatten()
                .all(|&class| (class as usize) < open_areas.len()),
            "border class id out of range"
        );
        BoundarySummary {
            origin,
            side,
            border,
            open_areas,
            closed_areas,
        }
    }

    /// Total regions this summary accounts for, treating each open class
    /// as one region — exact at the root (where nothing lies outside) and
    /// a lower-bound elsewhere.
    pub fn region_count(&self) -> usize {
        self.open_areas.len() + self.closed_areas.len()
    }

    /// Total feature area covered.
    pub fn feature_area(&self) -> u64 {
        self.open_areas.iter().sum::<u64>() + self.closed_areas.iter().sum::<u64>()
    }

    /// For each open class, the absolute coordinates of its cells on this
    /// extent's perimeter, in border-walk order — the "graphical
    /// delineation of features" (§3.1) the root can hand to a
    /// visualization client.
    pub fn open_region_border_cells(&self) -> Vec<Vec<GridCoord>> {
        let mut out = vec![Vec::new(); self.open_areas.len()];
        for (&(c, r), entry) in perimeter_cells(self.side).iter().zip(&self.border) {
            if let Some(class) = entry {
                out[*class as usize].push(GridCoord::new(self.origin.col + c, self.origin.row + r));
            }
        }
        out
    }

    /// The class at an absolute grid coordinate, which must lie on this
    /// extent's perimeter.
    pub fn class_at(&self, abs: GridCoord) -> Option<u32> {
        let col = abs
            .col
            .checked_sub(self.origin.col)
            .expect("west of extent");
        let row = abs
            .row
            .checked_sub(self.origin.row)
            .expect("north of extent");
        assert!(col < self.side && row < self.side, "{abs:?} outside extent");
        let perim = perimeter_cells(self.side);
        let idx = perim
            .iter()
            .position(|&(c, r)| c == col && r == row)
            .unwrap_or_else(|| panic!("{abs:?} is interior to the extent"));
        self.border[idx]
    }

    /// Message size in cost-model data units: one unit of framing, one per
    /// feature border cell (boundary description), one per closed region
    /// (count-and-area record). This is the `O(s)` compression that makes
    /// the divide-and-conquer energy-efficient.
    pub fn units(&self) -> u64 {
        1 + self.border.iter().flatten().count() as u64 + self.closed_areas.len() as u64
    }
}

struct Dsu {
    parent: Vec<u32>,
    area: Vec<u64>,
}

impl Dsu {
    fn new(areas: Vec<u64>) -> Self {
        Dsu {
            parent: (0..areas.len() as u32).collect(),
            area: areas,
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let p = self.parent[x as usize];
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent[x as usize] = root;
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
            self.area[ra as usize] += self.area[rb as usize];
        }
    }
}

/// Merges the four summaries of an extent's quadrants (NW, NE, SW, SE
/// order, as produced by [`wsn_core::Hierarchy::children`]) into the
/// summary of the doubled extent.
///
/// ```
/// use wsn_core::GridCoord;
/// use wsn_topoquery::{merge_four, BoundarySummary};
///
/// // Two adjacent feature cells fuse into one region across the seam.
/// let merged = merge_four(&[
///     BoundarySummary::leaf(GridCoord::new(0, 0), true),
///     BoundarySummary::leaf(GridCoord::new(1, 0), true),
///     BoundarySummary::leaf(GridCoord::new(0, 1), false),
///     BoundarySummary::leaf(GridCoord::new(1, 1), false),
/// ]);
/// assert_eq!(merged.region_count(), 1);
/// assert_eq!(merged.feature_area(), 2);
/// ```
pub fn merge_four(children: &[BoundarySummary; 4]) -> BoundarySummary {
    let s = children[0].side;
    let o = children[0].origin;
    let expected = [
        o,
        GridCoord::new(o.col + s, o.row),
        GridCoord::new(o.col, o.row + s),
        GridCoord::new(o.col + s, o.row + s),
    ];
    for (child, &want) in children.iter().zip(&expected) {
        assert_eq!(child.side, s, "quadrant sides differ");
        assert_eq!(
            child.origin, want,
            "quadrant origins do not tile the parent"
        );
    }

    // Global class namespace across the four children.
    let mut base = [0u32; 4];
    let mut acc = 0u32;
    for (i, child) in children.iter().enumerate() {
        base[i] = acc;
        acc += child.open_areas.len() as u32;
    }
    let all_areas: Vec<u64> = children
        .iter()
        .flat_map(|c| c.open_areas.iter().copied())
        .collect();
    let mut dsu = Dsu::new(all_areas);

    let class_at = |abs: GridCoord| -> Option<u32> {
        let quadrant = match (abs.col >= o.col + s, abs.row >= o.row + s) {
            (false, false) => 0,
            (true, false) => 1,
            (false, true) => 2,
            (true, true) => 3,
        };
        children[quadrant].class_at(abs).map(|c| c + base[quadrant])
    };

    // Union across the two internal seams (both orientations).
    for k in 0..s {
        let pairs = [
            // Vertical seam, northern half (NW | NE).
            (
                GridCoord::new(o.col + s - 1, o.row + k),
                GridCoord::new(o.col + s, o.row + k),
            ),
            // Vertical seam, southern half (SW | SE).
            (
                GridCoord::new(o.col + s - 1, o.row + s + k),
                GridCoord::new(o.col + s, o.row + s + k),
            ),
            // Horizontal seam, western half (NW / SW).
            (
                GridCoord::new(o.col + k, o.row + s - 1),
                GridCoord::new(o.col + k, o.row + s),
            ),
            // Horizontal seam, eastern half (NE / SE).
            (
                GridCoord::new(o.col + s + k, o.row + s - 1),
                GridCoord::new(o.col + s + k, o.row + s),
            ),
        ];
        for (a, b) in pairs {
            if let (Some(ca), Some(cb)) = (class_at(a), class_at(b)) {
                dsu.union(ca, cb);
            }
        }
    }

    // New border: canonical renumbering by first appearance.
    let side2 = 2 * s;
    let mut border = Vec::with_capacity(if side2 == 1 {
        1
    } else {
        (4 * side2 - 4) as usize
    });
    let mut new_id_of_root: HashMap<u32, u32> = HashMap::new();
    let mut open_areas = Vec::new();
    for (c, r) in perimeter_cells(side2) {
        let abs = GridCoord::new(o.col + c, o.row + r);
        let entry = class_at(abs).map(|cls| {
            let root = dsu.find(cls);
            *new_id_of_root.entry(root).or_insert_with(|| {
                open_areas.push(dsu.area[root as usize]);
                (open_areas.len() - 1) as u32
            })
        });
        border.push(entry);
    }

    // Closed regions: inherited ones plus every class root that fell off
    // the border.
    let mut closed_areas: Vec<u64> = children
        .iter()
        .flat_map(|c| c.closed_areas.iter().copied())
        .collect();
    let mut seen_roots = std::collections::HashSet::new();
    for cls in 0..dsu.parent.len() as u32 {
        let root = dsu.find(cls);
        if seen_roots.insert(root) && !new_id_of_root.contains_key(&root) {
            closed_areas.push(dsu.area[root as usize]);
        }
    }
    closed_areas.sort_unstable();

    BoundarySummary {
        origin: o,
        side: side2,
        border,
        open_areas,
        closed_areas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FeatureMap;
    use crate::regions::label_regions;

    fn map_of(rows: &[&str]) -> FeatureMap {
        let side = rows.len() as u32;
        let rows: Vec<Vec<bool>> = rows
            .iter()
            .map(|r| r.chars().map(|c| c == '#').collect())
            .collect();
        FeatureMap::from_fn(side, move |c| rows[c.row as usize][c.col as usize])
    }

    fn merge_tree(map: &FeatureMap) -> BoundarySummary {
        // Build the summary bottom-up exactly as the network would.
        fn recurse(map: &FeatureMap, origin: GridCoord, side: u32) -> BoundarySummary {
            if side == 1 {
                return BoundarySummary::leaf(origin, map.is_feature(origin));
            }
            let h = side / 2;
            let children = [
                recurse(map, origin, h),
                recurse(map, GridCoord::new(origin.col + h, origin.row), h),
                recurse(map, GridCoord::new(origin.col, origin.row + h), h),
                recurse(map, GridCoord::new(origin.col + h, origin.row + h), h),
            ];
            merge_four(&children)
        }
        recurse(map, GridCoord::new(0, 0), map.side())
    }

    #[test]
    fn perimeter_enumeration() {
        assert_eq!(perimeter_cells(1), vec![(0, 0)]);
        assert_eq!(perimeter_cells(2), vec![(0, 0), (1, 0), (1, 1), (0, 1)]);
        let p3 = perimeter_cells(3);
        assert_eq!(p3.len(), 8);
        assert_eq!(p3[0], (0, 0));
        assert_eq!(p3[2], (2, 0));
        assert_eq!(p3[4], (2, 2));
        assert_eq!(p3[6], (0, 2));
        assert_eq!(
            p3.len(),
            p3.iter().collect::<std::collections::HashSet<_>>().len()
        );
        assert_eq!(perimeter_cells(8).len(), 28);
    }

    #[test]
    fn leaf_summaries() {
        let f = BoundarySummary::leaf(GridCoord::new(2, 3), true);
        assert_eq!(f.region_count(), 1);
        assert_eq!(f.feature_area(), 1);
        assert_eq!(f.class_at(GridCoord::new(2, 3)), Some(0));
        assert_eq!(f.units(), 2);
        let e = BoundarySummary::leaf(GridCoord::new(0, 0), false);
        assert_eq!(e.region_count(), 0);
        assert_eq!(e.units(), 1);
    }

    #[test]
    fn merge_connects_across_seams() {
        // Two feature cells adjacent across the vertical seam: one region.
        let map = map_of(&["##", ".."]);
        let root = merge_tree(&map);
        assert_eq!(root.region_count(), 1);
        assert_eq!(root.feature_area(), 2);
        assert_eq!(root.closed_region_count(), 0);
    }

    #[test]
    fn merge_keeps_separate_regions_separate() {
        let map = map_of(&["#.", ".#"]);
        let root = merge_tree(&map);
        assert_eq!(root.region_count(), 2, "diagonal cells stay distinct");
    }

    #[test]
    fn interior_region_closes() {
        // A single feature cell in the middle of an 4×4: closed at the root.
        let map = map_of(&["....", ".#..", "....", "...."]);
        let root = merge_tree(&map);
        assert_eq!(root.region_count(), 1);
        assert_eq!(root.closed_region_count(), 1);
        assert_eq!(root.closed_areas(), &[1]);
        assert_eq!(root.open_class_count(), 0);
    }

    #[test]
    fn ring_region_stays_open_until_it_must() {
        // A ring touching the outer border stays open at the root.
        let map = map_of(&["####", "#..#", "#..#", "####"]);
        let root = merge_tree(&map);
        assert_eq!(root.region_count(), 1);
        assert_eq!(root.open_class_count(), 1);
        assert_eq!(root.feature_area(), 12);
    }

    #[test]
    fn u_shape_unifies_through_multiple_seams() {
        let map = map_of(&["#..#", "#..#", "#..#", "####"]);
        let root = merge_tree(&map);
        assert_eq!(root.region_count(), 1);
        assert_eq!(root.feature_area(), 10);
    }

    #[test]
    fn merge_matches_reference_construction() {
        let map = map_of(&["##.#", ".#..", "#.##", "#..#"]);
        let merged = merge_tree(&map);
        let direct = BoundarySummary::from_feature_map(&map, GridCoord::new(0, 0), 4);
        assert_eq!(merged, direct);
    }

    #[test]
    fn root_count_matches_ground_truth() {
        let map = map_of(&[
            "#.#.#.#.", "########", "........", "#......#", "#......#", "........", "##.##.##",
            "#..#...#",
        ]);
        let root = merge_tree(&map);
        let truth = label_regions(&map);
        assert_eq!(root.region_count(), truth.region_count());
        assert_eq!(root.feature_area() as usize, map.feature_count());
    }

    #[test]
    fn units_scale_with_boundary_not_area() {
        // Full 8×8 block: 28 border feature cells, 0 closed.
        let full = map_of(&["########"; 8]);
        let root = merge_tree(&full);
        assert_eq!(root.units(), 1 + 28);
        // Much smaller than shipping the 64-cell map.
        assert!(root.units() < 64);
    }

    #[test]
    fn fully_covered_extent_costs_exactly_the_certified_payload_ceiling() {
        // The symbolic cost certifier's payload ceiling
        // (`wsn_core::full_boundary_units`) claims a fully-featured
        // 2^l × 2^l extent summarizes to 4·2^l − 3 units (2 at l = 0).
        // The real summary must agree, or every certified upper bound
        // built on it is fiction.
        for level in 0u8..=4 {
            let side = 1usize << level;
            let row = "#".repeat(side);
            let rows: Vec<&str> = (0..side).map(|_| row.as_str()).collect();
            let root = merge_tree(&map_of(&rows));
            assert_eq!(
                root.units(),
                wsn_core::full_boundary_units(level),
                "level {level}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "quadrant origins")]
    fn mismatched_quadrants_panic() {
        let a = BoundarySummary::leaf(GridCoord::new(0, 0), false);
        let b = BoundarySummary::leaf(GridCoord::new(5, 0), false);
        let c = BoundarySummary::leaf(GridCoord::new(0, 1), false);
        let d = BoundarySummary::leaf(GridCoord::new(1, 1), false);
        merge_four(&[a, b, c, d]);
    }

    #[test]
    #[should_panic(expected = "interior to the extent")]
    fn class_at_interior_panics() {
        let map = map_of(&["####", "####", "####", "####"]);
        let s = BoundarySummary::from_feature_map(&map, GridCoord::new(0, 0), 4);
        s.class_at(GridCoord::new(1, 1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::field::{Field, FieldSpec};
    use crate::regions::label_regions;
    use proptest::prelude::*;

    fn random_map(side: u32, p: f64, seed: u64) -> FeatureMap {
        Field::generate(
            FieldSpec::RandomCells {
                p,
                hot: 1.0,
                cold: 0.0,
            },
            side,
            seed,
        )
        .threshold(0.5)
    }

    fn merge_tree(map: &FeatureMap) -> BoundarySummary {
        fn recurse(map: &FeatureMap, origin: GridCoord, side: u32) -> BoundarySummary {
            if side == 1 {
                return BoundarySummary::leaf(origin, map.is_feature(origin));
            }
            let h = side / 2;
            let children = [
                recurse(map, origin, h),
                recurse(map, GridCoord::new(origin.col + h, origin.row), h),
                recurse(map, GridCoord::new(origin.col, origin.row + h), h),
                recurse(map, GridCoord::new(origin.col + h, origin.row + h), h),
            ];
            merge_four(&children)
        }
        recurse(map, GridCoord::new(0, 0), map.side())
    }

    proptest! {
        /// THE correctness property: the distributed merge tree computes
        /// exactly the reference summary, at every internal extent.
        #[test]
        fn merge_equals_reference(p in 0.0f64..1.0, seed in 0u64..2000, pow in 1u32..5) {
            let side = 1 << pow;
            let map = random_map(side, p, seed);
            let merged = merge_tree(&map);
            let direct = BoundarySummary::from_feature_map(&map, GridCoord::new(0, 0), side);
            prop_assert_eq!(merged, direct);
        }

        /// At the root, region count and total area equal the centralized
        /// ground truth.
        #[test]
        fn root_agrees_with_ground_truth(p in 0.0f64..1.0, seed in 0u64..2000, pow in 1u32..6) {
            let side = 1 << pow;
            let map = random_map(side, p, seed);
            let root = merge_tree(&map);
            let truth = label_regions(&map);
            prop_assert_eq!(root.region_count(), truth.region_count());
            prop_assert_eq!(root.feature_area() as usize, map.feature_count());
            // Region areas also match as multisets (open ∪ closed).
            let mut got: Vec<u64> = root.open_areas().iter().copied()
                .chain(root.closed_areas().iter().copied()).collect();
            got.sort_unstable();
            let mut want: Vec<u64> = truth.areas().iter().map(|&a| u64::from(a)).collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        /// Summary size is O(side), never O(side²).
        #[test]
        fn units_bounded_by_perimeter(p in 0.0f64..1.0, seed in 0u64..500, pow in 1u32..6) {
            let side: u32 = 1 << pow;
            let map = random_map(side, p, seed);
            let root = merge_tree(&map);
            // border ≤ 4s−4 cells; closed regions ≤ (s−2)²/2+1 but we only
            // assert the border term dominates the linear bound claim:
            prop_assert!(root.units() <= 1 + (4 * u64::from(side) - 4) + u64::from(side) * u64::from(side) / 2 + 1);
            prop_assert!(root.open_class_count() as u64 <= 4 * u64::from(side) - 4);
        }
    }
}
