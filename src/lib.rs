//! # wsn — umbrella crate
//!
//! Re-exports the whole reproduction of Bakshi & Prasanna, *Algorithm
//! Design and Synthesis for Wireless Sensor Networks* (ICPP 2004), so
//! examples and downstream users depend on one crate:
//!
//! * [`sim`] — deterministic discrete-event kernel;
//! * [`net`] — physical sensor-network substrate;
//! * [`core`] — the virtual architecture (grid model, cost model, group
//!   middleware, programming primitives, analytical estimation, VM);
//! * [`runtime`] — topology emulation and virtual-process binding on real
//!   deployments;
//! * [`obs`] — telemetry: phase spans, metric registry, JSONL traces;
//! * [`synth`] — task graphs, constrained mapping, program synthesis;
//! * [`analyze`] — static analysis of synthesized artifacts: structured
//!   diagnostics, reachability, constraint/deadlock/budget lints;
//! * [`topoquery`] — the topographic-querying case study.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system map.

#![forbid(unsafe_code)]

pub use wsn_analyze as analyze;
pub use wsn_core as core;
pub use wsn_net as net;
pub use wsn_obs as obs;
pub use wsn_runtime as runtime;
pub use wsn_sim as sim;
pub use wsn_synth as synth;
pub use wsn_topoquery as topoquery;
