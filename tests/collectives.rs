//! Collective primitives across execution levels: the same reduce /
//! disseminate / sort programs running on the ideal VM and on emulated
//! physical deployments.

use wsn::core::{
    snake_coord, CollectiveMsg, CostModel, DisseminateProgram, ReduceOp, ReduceProgram,
    SortProgram, VirtualGrid, Vm,
};
use wsn::net::{DeploymentSpec, LinkModel, RadioModel};
use wsn::runtime::PhysicalRuntime;

fn physical_runtime(
    side: u32,
    per_cell: usize,
    seed: u64,
    budget: Option<f64>,
    field: impl Fn(wsn::core::GridCoord) -> f64 + 'static,
) -> PhysicalRuntime<CollectiveMsg> {
    let deployment = DeploymentSpec::per_cell(side, per_cell).generate(seed);
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    let mut rt = PhysicalRuntime::new(
        deployment,
        RadioModel::uniform(range),
        LinkModel::ideal(),
        budget,
        1,
        seed,
        field,
    );
    let topo = rt.run_topology_emulation();
    assert!(topo.complete);
    let bind = rt.run_binding();
    assert!(bind.unique && bind.tree_complete);
    rt
}

#[test]
fn sum_reduce_agrees_between_vm_and_physical() {
    let side = 4u32;
    let reading = |c: wsn::core::GridCoord| f64::from(c.col * 3 + c.row * 5);
    let mut vm: Vm<CollectiveMsg> = Vm::new(side, CostModel::uniform(), 1, reading, move |_| {
        Box::new(ReduceProgram::new(side, ReduceOp::Sum))
    });
    vm.run();
    let vm_sum = match vm.take_exfiltrated().pop().unwrap().payload {
        CollectiveMsg::Reduce { value, .. } => value,
        other => panic!("{other:?}"),
    };

    let mut rt = physical_runtime(side, 3, 7, None, reading);
    rt.install_programs(move |_| Box::new(ReduceProgram::new(side, ReduceOp::Sum)));
    let app = rt.run_application();
    assert_eq!(app.exfil_count, 1);
    let phys_sum = match rt.take_exfiltrated().pop().unwrap().payload {
        CollectiveMsg::Reduce { value, .. } => value,
        other => panic!("{other:?}"),
    };
    assert_eq!(vm_sum, phys_sum);
}

#[test]
fn dissemination_reaches_every_cell_leader_physically() {
    let side = 4u32;
    let mut rt = physical_runtime(side, 2, 3, None, |_| 0.0);
    rt.install_programs(move |_| Box::new(DisseminateProgram::new(side, 9.75)));
    let app = rt.run_application();
    // One exfiltration per virtual node (each cell's leader).
    assert_eq!(app.exfil_count, (side as usize).pow(2));
    let mut cells: Vec<_> = rt.take_exfiltrated().into_iter().map(|e| e.from).collect();
    cells.sort();
    cells.dedup();
    assert_eq!(cells.len(), (side as usize).pow(2));
}

#[test]
fn in_network_sort_works_on_a_physical_deployment() {
    let side = 4u32;
    let grid = VirtualGrid::new(side);
    // Distinct per-cell readings, descending along the snake so the sort
    // has to move everything.
    let reading = move |c: wsn::core::GridCoord| {
        let n = grid.node_count();
        (n - wsn::core::snake_index(grid, c)) as f64
    };
    let mut rt = physical_runtime(side, 3, 11, None, reading);
    rt.install_programs(move |_| Box::new(SortProgram::new(side)));
    let app = rt.run_application();
    assert_eq!(app.exfil_count, grid.node_count());
    let mut out = vec![f64::NAN; grid.node_count()];
    for e in rt.take_exfiltrated() {
        match e.payload {
            CollectiveMsg::Sort { phase, value } => {
                // The exfiltrating cell must be the phase's snake position.
                assert_eq!(snake_coord(grid, phase as usize), e.from);
                out[phase as usize] = value;
            }
            other => panic!("{other:?}"),
        }
    }
    let expect: Vec<f64> = (1..=grid.node_count()).map(|v| v as f64).collect();
    assert_eq!(out, expect, "sorted ascending along the snake");
}

#[test]
fn min_residual_reduce_reports_the_ledger_floor() {
    let side = 2u32;
    let budget = 1_000.0;
    let mut rt = physical_runtime(side, 3, 5, Some(budget), |_| 1.0);
    // Burn some uneven energy first.
    for _ in 0..5 {
        rt.install_programs(move |_| Box::new(ReduceProgram::new(side, ReduceOp::Sum)));
        rt.run_application();
        rt.take_exfiltrated();
    }
    rt.install_programs(move |_| Box::new(ReduceProgram::min_residual_energy(side)));
    let app = rt.run_application();
    assert_eq!(app.exfil_count, 1);
    let reported = match rt.take_exfiltrated().pop().unwrap().payload {
        CollectiveMsg::Reduce { value, count, .. } => {
            assert_eq!(count, u64::from(side * side));
            value
        }
        other => panic!("{other:?}"),
    };
    let ledger = rt.medium().borrow().ledger().clone();
    let floor = (0..rt.deployment().node_count())
        .filter_map(|i| ledger.residual(i))
        .fold(f64::INFINITY, f64::min);
    assert!(reported < budget, "energy was spent");
    // The query itself spends energy after readings were taken, so the
    // reported minimum upper-bounds the post-run floor.
    assert!(reported >= floor);
}
