//! Cross-crate integration: the complete design flow of Figure 1, asserted.

use std::rc::Rc;
use wsn::core::{
    centralized_collection_estimate, quadtree_merge_estimate, CostModel, GridCoord, Hierarchy,
    VirtualArchitecture, Vm,
};
use wsn::net::{DeploymentSpec, LinkModel};
use wsn::synth::{
    first_violation, quadtree_task_graph, render_figure4, synthesize_quadtree_program, Mapper,
    MappingCost, QuadrantMapper, SynthesizedNode,
};
use wsn::topoquery::{
    label_regions, queries, run_centralized_vm, run_dandc_physical, run_dandc_vm, Field, FieldSpec,
    Implementation, RegionSemantics,
};

fn units(level: u8) -> u64 {
    if level == 0 {
        2
    } else {
        4 * (1u64 << level) - 3
    }
}

#[test]
fn design_flow_analysis_favors_dandc_at_scale() {
    let arch = VirtualArchitecture::grid_uniform(16);
    let dandc = quadtree_merge_estimate(16, &arch.cost, &units, &|l| 4 * units(l - 1), 1);
    let central = centralized_collection_estimate(16, &arch.cost, 1, 1, 1);
    assert!(dandc.total_energy < central.total_energy);
    // At small scale the centralized approach wins — the analysis is a
    // genuine decision procedure, not a foregone conclusion.
    let dandc_s = quadtree_merge_estimate(4, &arch.cost, &units, &|l| 4 * units(l - 1), 1);
    let central_s = centralized_collection_estimate(4, &arch.cost, 1, 1, 1);
    assert!(dandc_s.total_energy > central_s.total_energy);
}

#[test]
fn mapping_synthesis_execution_round_trip() {
    let side = 8u32;
    let qt = quadtree_task_graph(side, &units, &|_| 1);
    let mapping = QuadrantMapper.map(&qt);
    first_violation(&qt, &mapping).unwrap();
    let mapping_cost = MappingCost::evaluate(&qt, &mapping, &CostModel::uniform());

    let program = synthesize_quadtree_program(Hierarchy::new(side).max_level());
    let rendered = render_figure4(&program);
    assert!(rendered.contains("Condition : start = true"));

    let field = Field::generate(
        FieldSpec::Blobs {
            count: 2,
            amplitude: 8.0,
            radius: 1.5,
        },
        side,
        3,
    );
    let program = Rc::new(program);
    let semantics = Rc::new(RegionSemantics { threshold: 4.0 });
    let f = field.clone();
    let mut vm = Vm::new(
        side,
        CostModel::uniform(),
        1,
        move |c| f.value(c),
        move |_| {
            Box::new(SynthesizedNode::new(
                program.clone(),
                semantics.clone(),
                side,
            ))
        },
    );
    vm.run();
    let metrics = vm.metrics();
    let result = vm.take_exfiltrated().pop().expect("root result");
    assert_eq!(result.from, GridCoord::new(0, 0));
    let summary = result.payload.data.expect_complete().clone();
    let truth = label_regions(&field.threshold(4.0));
    assert_eq!(summary.region_count(), truth.region_count());

    // The mapping-stage critical path is an upper bound for the actual
    // run's latency (mapping cost assumes worst-case full-boundary
    // payloads; the real field's summaries are no larger).
    assert!(metrics.latency_ticks <= mapping_cost.critical_path_ticks);
}

#[test]
fn queries_answered_from_in_network_result_match_centralized() {
    let side = 16u32;
    let field = Field::generate(
        FieldSpec::RandomCells {
            p: 0.35,
            hot: 1.0,
            cold: 0.0,
        },
        side,
        13,
    );
    let dandc = run_dandc_vm(side, &field, 0.5, 1, Implementation::Native);
    let central = run_centralized_vm(side, &field, 0.5, 1);
    let summary = dandc.summary.unwrap();
    assert_eq!(queries::count_regions(&summary), central.regions as usize);
    assert_eq!(queries::total_feature_area(&summary), central.area);
    let truth = label_regions(&field.threshold(0.5));
    let mut truth_areas: Vec<u64> = truth.areas().iter().map(|&a| u64::from(a)).collect();
    truth_areas.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(queries::region_areas_desc(&summary), truth_areas);
}

#[test]
fn same_program_runs_on_vm_and_physical_network_with_same_answer() {
    let side = 4u32;
    let field = Field::generate(
        FieldSpec::Blobs {
            count: 2,
            amplitude: 9.0,
            radius: 1.0,
        },
        side,
        21,
    );
    let vm = run_dandc_vm(side, &field, 5.0, 2, Implementation::Synthesized);
    let deployment = DeploymentSpec::uniform(side, 80).generate(33);
    let (phys, reports) = run_dandc_physical(
        deployment,
        LinkModel::ideal(),
        5.0,
        &field,
        2,
        Implementation::Synthesized,
    );
    assert!(reports.topo.complete);
    assert!(reports.bind.unique);
    assert_eq!(vm.summary, phys.summary);
    // The abstraction costs something (§7): physical ≥ virtual on both axes.
    assert!(phys.metrics.total_energy >= vm.metrics.total_energy);
    assert!(phys.metrics.latency_ticks >= vm.metrics.latency_ticks);
}

#[test]
fn estimator_tracks_measured_scaling_shape() {
    // The who-wins and by-what-factor shape (not absolute numbers) must
    // hold between estimate and measurement as the grid grows.
    let cost = CostModel::uniform();
    let mut prev_ratio = None;
    for side in [8u32, 16, 32] {
        let field = Field::generate(FieldSpec::Uniform(10.0), side, 1);
        let measured = run_dandc_vm(side, &field, 5.0, 1, Implementation::Native);
        let est = quadtree_merge_estimate(side, &cost, &units, &|l| 4 * units(l - 1), 1);
        let ratio = measured.metrics.total_energy / est.total_energy;
        assert!(
            (ratio - 1.0).abs() < 1e-9,
            "side {side}: exact on the uniform field"
        );
        let _ = prev_ratio.replace(ratio);
    }
}
