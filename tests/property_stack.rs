//! Property-based tests over the whole stack: random fields, random
//! deployments, both implementations, both execution levels.

use proptest::prelude::*;
use wsn::net::{DeploymentSpec, LinkModel, RadioModel};
use wsn::runtime::PhysicalRuntime;
use wsn::topoquery::{
    label_regions, run_dandc_physical, run_dandc_vm, Field, FieldSpec, Implementation,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any random field, the in-network D&C result equals the
    /// centralized ground truth, for both implementations.
    #[test]
    fn dandc_always_matches_ground_truth(
        pow in 1u32..5,
        p in 0.0f64..1.0,
        field_seed in 0u64..1000,
        run_seed in 0u64..100,
    ) {
        let side = 1u32 << pow;
        let field = Field::generate(
            FieldSpec::RandomCells { p, hot: 1.0, cold: 0.0 }, side, field_seed,
        );
        let truth = label_regions(&field.threshold(0.5));
        for implementation in [Implementation::Native, Implementation::Synthesized] {
            let out = run_dandc_vm(side, &field, 0.5, run_seed, implementation);
            prop_assert_eq!(out.exfil_count, 1);
            let summary = out.summary.unwrap();
            prop_assert_eq!(summary.region_count(), truth.region_count());
            prop_assert_eq!(summary.feature_area() as usize, field.threshold(0.5).feature_count());
        }
    }

    /// The two implementations are observationally identical: same answer,
    /// same traffic, same energy, same latency.
    #[test]
    fn implementations_are_observationally_equal(
        pow in 1u32..5,
        p in 0.1f64..0.9,
        seed in 0u64..500,
    ) {
        let side = 1u32 << pow;
        let field = Field::generate(
            FieldSpec::RandomCells { p, hot: 1.0, cold: 0.0 }, side, seed,
        );
        let a = run_dandc_vm(side, &field, 0.5, 7, Implementation::Native);
        let b = run_dandc_vm(side, &field, 0.5, 7, Implementation::Synthesized);
        prop_assert_eq!(a.summary, b.summary);
        prop_assert_eq!(a.metrics.messages, b.metrics.messages);
        prop_assert_eq!(a.metrics.data_units, b.metrics.data_units);
        prop_assert_eq!(a.metrics.latency_ticks, b.metrics.latency_ticks);
        prop_assert!((a.metrics.total_energy - b.metrics.total_energy).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On random deployments with loss-free links, the physical execution
    /// always reproduces the virtual result.
    #[test]
    fn physical_equals_virtual_on_random_deployments(
        n in 40usize..120,
        field_seed in 0u64..200,
        dep_seed in 0u64..200,
    ) {
        let side = 4u32;
        let field = Field::generate(
            FieldSpec::RandomCells { p: 0.4, hot: 1.0, cold: 0.0 }, side, field_seed,
        );
        let vm = run_dandc_vm(side, &field, 0.5, 3, Implementation::Native);
        let deployment = DeploymentSpec::uniform(side, n).generate(dep_seed);
        let (phys, reports) = run_dandc_physical(
            deployment, LinkModel::ideal(), 0.5, &field, 3, Implementation::Native,
        );
        prop_assert!(reports.topo.complete);
        prop_assert!(reports.bind.unique);
        prop_assert_eq!(vm.summary, phys.summary);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// At the guaranteed range, the §5 protocols always succeed on random
    /// coverage-repaired deployments: complete tables, verified routes,
    /// unique closest-to-center leaders, complete spanning trees.
    #[test]
    fn runtime_protocols_always_converge(
        m in 2u32..6,
        n in 10usize..120,
        seed in 0u64..10_000,
    ) {
        let deployment = DeploymentSpec::uniform(m, n).generate(seed);
        let range = deployment.grid().range_for_adjacent_cell_reachability();
        let mut rt: PhysicalRuntime<u32> = PhysicalRuntime::new(
            deployment,
            RadioModel::uniform(range),
            LinkModel::ideal(),
            None,
            1,
            seed,
            |_| 0.0,
        );
        let topo = rt.run_topology_emulation();
        prop_assert!(topo.complete);
        prop_assert!(rt.verify_routes().is_ok());
        let bind = rt.run_binding();
        prop_assert!(bind.unique);
        prop_assert!(bind.tree_complete);
        // Elected leaders are the δ-minimal nodes of their cells.
        for cell in rt.grid().nodes() {
            let leader = rt.leader_of(cell).expect("leader");
            let center = rt.deployment().grid().cell_center(cell);
            let best = rt
                .deployment()
                .nodes_in_cell(cell)
                .iter()
                .map(|&i| rt.deployment().position(i).distance(center))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(rt.deployment().position(leader).distance(center) <= best + 1e-9);
        }
    }
}
