//! Failure handling across the stack: node churn, re-election, message
//! loss, and the safety property that a stalled merge never yields a wrong
//! answer.

use wsn::core::GridCoord;
use wsn::net::{ChaosPlan, DeploymentSpec, FaultPlan, LinkModel, RadioModel};
use wsn::runtime::{PhysicalRuntime, SelfHealConfig};
use wsn::sim::SimTime;
use wsn::synth::SummaryMsg;
use wsn::topoquery::{
    label_regions, run_dandc_physical, DandcProgram, Field, FieldSpec, Implementation,
    RegionSummary,
};

type Msg = SummaryMsg<RegionSummary>;

fn build_runtime(side: u32, per_cell: usize, seed: u64, field: Field) -> PhysicalRuntime<Msg> {
    let deployment = DeploymentSpec::per_cell(side, per_cell).generate(seed);
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    PhysicalRuntime::new(
        deployment,
        RadioModel::uniform(range),
        LinkModel::ideal(),
        None,
        1,
        seed,
        move |c| field.value(c),
    )
}

#[test]
fn killing_every_cell_leader_still_recovers() {
    let side = 2u32;
    let field = Field::generate(FieldSpec::Uniform(10.0), side, 1);
    let truth = label_regions(&field.threshold(5.0)).region_count();
    let mut rt = build_runtime(side, 5, 3, field);
    rt.run_topology_emulation();
    let bind = rt.run_binding();
    assert!(bind.unique);
    let victims: Vec<usize> = rt
        .grid()
        .nodes()
        .map(|c| rt.leader_of(c).unwrap())
        .collect();
    for v in &victims {
        let now = rt.now();
        rt.medium().borrow_mut().kill(*v, now);
    }
    let (topo, bind2) = rt.refresh_after_churn();
    assert!(topo.complete, "4 survivors per cell keep cells connected");
    assert!(bind2.unique);
    for cell in rt.grid().nodes() {
        let new = rt.leader_of(cell).unwrap();
        assert!(!victims.contains(&new));
    }
    rt.install_programs(move |_| Box::new(DandcProgram::new(side, 5.0)));
    let app = rt.run_application();
    assert_eq!(app.exfil_count, 1);
    assert_eq!(
        rt.take_exfiltrated()[0]
            .payload
            .data
            .expect_complete()
            .region_count(),
        truth
    );
}

#[test]
fn fault_plan_kills_mid_application() {
    // A mid-run failure of the root leader prevents exfiltration but the
    // run still terminates (no wedged simulation). The kill travels the
    // real injector path: a FaultPlan installed into the runtime's kernel,
    // applied by the injector actor at its scheduled instant.
    let side = 2u32;
    let field = Field::generate(FieldSpec::Uniform(10.0), side, 1);
    let mut rt = build_runtime(side, 3, 5, field);
    rt.run_topology_emulation();
    rt.run_binding();
    let root_leader = rt.leader_of(GridCoord::new(0, 0)).unwrap();
    // Schedule the kill just after the application kicks off.
    let kill_at = rt.now() + 1;
    let plan = FaultPlan::none().kill_at(SimTime::from_ticks(kill_at.ticks()), root_leader);
    rt.install_chaos(plan.into_chaos()).unwrap();
    rt.install_programs(move |_| Box::new(DandcProgram::new(side, 5.0)));
    let app = rt.run_application();
    assert_eq!(app.exfil_count, 0, "root died; nothing exfiltrated");
    assert!(
        !rt.medium().borrow().is_alive(root_leader),
        "the injector applied the crash"
    );
}

#[test]
fn self_healing_recovers_the_answer_after_leader_crash() {
    // The same class of failure `fault_plan_kills_mid_application` proves
    // fatal for a plain application run is survived by the chaos mission:
    // leases expire, the runtime re-emulates and re-binds, and the answer
    // still matches the centralized oracle.
    let side = 2u32;
    let field = Field::generate(FieldSpec::Uniform(10.0), side, 1);
    let truth = label_regions(&field.threshold(5.0)).region_count();
    let victim = {
        let mut probe = build_runtime(side, 4, 3, field.clone());
        probe.run_topology_emulation();
        assert!(probe.run_binding().unique);
        probe.leader_of(GridCoord::new(0, 0)).unwrap()
    };
    let cfg = SelfHealConfig::default();
    // A pending far-future chaos event holds each bounded bring-up phase
    // to its full horizon, so the application starts at exactly
    // 3 × phase_budget_ticks; the root-cell leader dies one tick later.
    let crash_at = 3 * cfg.phase_budget_ticks + 1;
    let mut rt = build_runtime(side, 4, 3, field);
    rt.install_programs(move |_| Box::new(DandcProgram::new(side, 5.0)));
    rt.install_chaos(ChaosPlan::none().crash_at(SimTime::from_ticks(crash_at), victim))
        .unwrap();
    let report = rt.run_chaos_mission(cfg, 1);
    assert!(
        report.completed,
        "healing must rescue the merge: {report:?}"
    );
    assert!(report.heals >= 1, "{report:?}");
    assert!(report.leases_expired >= 1, "{report:?}");
    let answers = rt.take_exfiltrated();
    assert!(!answers.is_empty());
    for a in &answers {
        assert_eq!(
            a.payload.data.expect_complete().region_count(),
            truth,
            "a healed run must still tell the truth"
        );
    }
}

#[test]
fn loss_free_physical_run_is_always_correct() {
    for seed in 0..5u64 {
        let side = 4u32;
        let field = Field::generate(
            FieldSpec::RandomCells {
                p: 0.5,
                hot: 1.0,
                cold: 0.0,
            },
            side,
            seed,
        );
        let truth = label_regions(&field.threshold(0.5)).region_count();
        let deployment = DeploymentSpec::per_cell(side, 2).generate(seed + 50);
        let (out, _) = run_dandc_physical(
            deployment,
            LinkModel::ideal(),
            0.5,
            &field,
            seed,
            Implementation::Native,
        );
        assert_eq!(
            out.summary.expect("no loss, must complete").region_count(),
            truth
        );
    }
}

#[test]
fn lossy_runs_complete_or_stay_silent_never_lie() {
    let side = 4u32;
    let field = Field::generate(
        FieldSpec::Blobs {
            count: 2,
            amplitude: 10.0,
            radius: 1.0,
        },
        side,
        3,
    );
    let truth = label_regions(&field.threshold(5.0)).region_count();
    let mut completed = 0;
    for seed in 0..8u64 {
        let deployment = DeploymentSpec::per_cell(side, 2).generate(seed);
        let (out, _) = run_dandc_physical(
            deployment,
            LinkModel::lossy(0.15, 2),
            5.0,
            &field,
            seed,
            Implementation::Native,
        );
        if let Some(summary) = out.summary {
            completed += 1;
            // Completion implies every child summary arrived intact, so
            // the answer is exact.
            assert_eq!(summary.region_count(), truth, "seed {seed}");
        }
    }
    // With 15% loss across ~45 logical messages, at least one of eight
    // trials stalls and at least one completes (deterministic seeds).
    assert!(completed < 8, "some trial should stall under 15% loss");
}
