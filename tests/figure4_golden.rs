//! Golden test: the synthesized Figure-4 program's concrete rendering.
//! If synthesis or code generation changes shape, this fails loudly and
//! the reviewer compares against the paper's figure.

use wsn::synth::{render_figure4, synthesize_quadtree_program};

const GOLDEN: &str = r#"// synthesized program: quadtree-region-labeling
State (initial values) :
    start(= false), transmit(= false), recLevel(= 0), maxrecLevel(= 2),
    mySubGraph[0..maxrecLevel](= NULL), myCoords,
    msgsReceived[0..maxrecLevel](= 0)

Message alphabet :
    mGraph = {senderCoord, msubGraph, mrecLevel}

Condition : start = true
Action    : start = false
            compute mySubGraph[0] from intra-cell readings
            transmit = true
            recLevel = recLevel + 1

Condition : received mGraph
Action    : merge(mGraph.msubGraph, mySubGraph[mGraph.mrecLevel])
            if (senderCoord = myCoords)
            else
                msgsReceived[mGraph.mrecLevel]++

Condition : transmit = true
Action    : transmit = false
            if (recLevel - 1 = maxrecLevel)
                exfiltrate mySubGraph[maxrecLevel]
            else
                message = {myCoords, mySubGraph[recLevel - 1], recLevel}
                send message to Leader(recLevel)

Condition : msgsReceived[recLevel] = 3
Action    : transmit = true
            recLevel = recLevel + 1
"#;

#[test]
fn figure4_rendering_matches_golden() {
    let rendered = render_figure4(&synthesize_quadtree_program(2));
    assert_eq!(
        rendered.trim(),
        GOLDEN.trim(),
        "\n--- rendered ---\n{rendered}"
    );
}
