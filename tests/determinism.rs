//! Whole-stack determinism: every layer is a pure function of (config,
//! seed). This is the property that makes EXPERIMENTS.md reproducible.

use wsn::core::GridCoord;
use wsn::net::{ChaosPlan, DeploymentSpec, LinkModel, RadioModel};
use wsn::runtime::{PhysicalRuntime, SelfHealConfig};
use wsn::sim::SimTime;
use wsn::topoquery::{
    run_dandc_physical, run_dandc_vm, DandcMsg, DandcProgram, Field, FieldSpec, Implementation,
};

fn field(side: u32, seed: u64) -> Field {
    Field::generate(
        FieldSpec::RandomCells {
            p: 0.4,
            hot: 1.0,
            cold: 0.0,
        },
        side,
        seed,
    )
}

#[test]
fn vm_runs_are_bit_identical() {
    let f = field(16, 5);
    let a = run_dandc_vm(16, &f, 0.5, 9, Implementation::Native);
    let b = run_dandc_vm(16, &f, 0.5, 9, Implementation::Native);
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn physical_runs_are_bit_identical_even_with_loss_and_jitter() {
    let f = field(4, 5);
    let run = || {
        let deployment = DeploymentSpec::per_cell(4, 3).generate(7);
        run_dandc_physical(
            deployment,
            LinkModel::lossy(0.05, 3),
            0.5,
            &f,
            11,
            Implementation::Native,
        )
    };
    let (a, ra) = run();
    let (b, rb) = run();
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(ra.topo.elapsed_ticks, rb.topo.elapsed_ticks);
    assert_eq!(ra.topo.broadcasts, rb.topo.broadcasts);
    assert_eq!(ra.bind.leaders, rb.bind.leaders);
    assert_eq!(ra.app.physical_hops, rb.app.physical_hops);
}

#[test]
fn different_seeds_change_stochastic_outcomes() {
    let f = field(4, 5);
    let deployment = DeploymentSpec::per_cell(4, 3).generate(7);
    let (_, ra) = run_dandc_physical(
        deployment.clone(),
        LinkModel::lossy(0.3, 3),
        0.5,
        &f,
        1,
        Implementation::Native,
    );
    let (_, rb) = run_dandc_physical(
        deployment,
        LinkModel::lossy(0.3, 3),
        0.5,
        &f,
        2,
        Implementation::Native,
    );
    // With 30% loss the two seeds essentially cannot produce identical
    // physical-hop traces.
    assert_ne!(
        (
            ra.app.physical_hops,
            ra.topo.elapsed_ticks,
            ra.bind.elapsed_ticks
        ),
        (
            rb.app.physical_hops,
            rb.topo.elapsed_ticks,
            rb.bind.elapsed_ticks
        )
    );
}

#[test]
fn telemetry_traces_are_bit_identical() {
    let f = field(4, 5);
    let run = || {
        let deployment = DeploymentSpec::per_cell(4, 3).generate(7);
        let range = deployment.grid().range_for_adjacent_cell_reachability();
        let f2 = f.clone();
        let mut rt: PhysicalRuntime<DandcMsg> = PhysicalRuntime::new(
            deployment,
            RadioModel::uniform(range),
            LinkModel::ideal(),
            None,
            1,
            11,
            move |c| f2.value(c),
        );
        rt.enable_telemetry(true);
        rt.run_topology_emulation();
        assert!(rt.run_binding().unique);
        rt.install_programs(|_| Box::new(DandcProgram::new(4, 0.5)));
        rt.run_application();
        rt.record_trace()
    };
    let a = run();
    let b = run();
    // The span forest — phase boundaries, nesting, event counts — is a
    // pure function of (config, seed), and so is the whole trace export.
    assert_eq!(a.spans, b.spans);
    assert!(!a.spans.is_empty());
    assert_eq!(a.to_jsonl(), b.to_jsonl());
}

#[test]
fn chaos_recovery_traces_are_bit_identical() {
    // Golden trace: a fixed crash-and-recover schedule under the
    // self-healing mission exports a byte-identical TraceDocument across
    // two runs with the same seed, with the recovery counters present.
    let f = field(2, 5);
    let victim = {
        let deployment = DeploymentSpec::per_cell(2, 4).generate(7);
        let range = deployment.grid().range_for_adjacent_cell_reachability();
        let f2 = f.clone();
        let mut probe: PhysicalRuntime<DandcMsg> = PhysicalRuntime::new(
            deployment,
            RadioModel::uniform(range),
            LinkModel::ideal(),
            None,
            1,
            11,
            move |c| f2.value(c),
        );
        probe.run_topology_emulation();
        assert!(probe.run_binding().unique);
        probe.leader_of(GridCoord::new(0, 0)).unwrap()
    };
    let cfg = SelfHealConfig::default();
    // Pending chaos timers hold each bounded bring-up phase to its full
    // horizon, so the application starts at exactly 3 × the phase budget.
    let app_start = 3 * cfg.phase_budget_ticks;
    let run = || {
        let deployment = DeploymentSpec::per_cell(2, 4).generate(7);
        let range = deployment.grid().range_for_adjacent_cell_reachability();
        let f2 = f.clone();
        let mut rt: PhysicalRuntime<DandcMsg> = PhysicalRuntime::new(
            deployment,
            RadioModel::uniform(range),
            LinkModel::ideal(),
            None,
            1,
            11,
            move |c| f2.value(c),
        );
        rt.enable_telemetry(true);
        rt.install_programs(|_| Box::new(DandcProgram::new(2, 0.5)));
        rt.install_chaos(
            ChaosPlan::none()
                .crash_at(SimTime::from_ticks(app_start + 1), victim)
                .recover_at(SimTime::from_ticks(app_start + 200), victim),
        )
        .unwrap();
        let report = rt.run_chaos_mission(cfg, 1);
        (report, rt.record_trace())
    };
    let (ra, a) = run();
    let (rb, b) = run();
    assert_eq!(ra, rb, "mission reports replay bit-identically");
    assert_eq!(a.to_jsonl(), b.to_jsonl(), "byte-identical trace export");
    assert!(ra.completed, "{ra:?}");
    assert!(ra.heals >= 1, "{ra:?}");
    // The schedule was applied at its instants and the recovery loop's
    // counters surface in the exported document.
    assert_eq!(a.counter("chaos.crash"), 1);
    assert_eq!(a.counter("chaos.recover"), 1);
    assert!(a.counter("heal.reemulations") >= 1);
    assert!(a.counter("heal.leases_expired") >= 1);
    assert_eq!(a.counter("heal.epochs"), u64::from(ra.epochs));
    assert!(
        a.spans.iter().any(|s| s.name == "chaos-mission"),
        "the mission records its own span"
    );
}

#[test]
fn deployment_generation_is_seed_stable() {
    let a = DeploymentSpec::uniform(8, 200).generate(99);
    let b = DeploymentSpec::uniform(8, 200).generate(99);
    assert_eq!(a.positions(), b.positions());
}
