//! Differential chaos fuzzing at the stack level (the safety property of
//! `churn_and_loss.rs`, generalized): random fields × random typed fault
//! schedules, executed under the self-healing runtime, must either match
//! the centralized `label_regions` oracle or stall explicitly — never
//! report a wrong region count. Failures shrink to a minimal schedule and
//! replay from their seed alone.

use wsn::topoquery::chaos::{
    run_scenario, run_scenario_with_plan, shrink_plan, ChaosScenario, ChaosVerdict,
};

/// Seed lane for this suite (disjoint from the wsn-chaos CLI's default
/// sweep so CI exercises fresh schedules).
const BASE_SEED: u64 = 1000;
const CASES: u64 = 40;

#[test]
fn random_chaos_never_yields_wrong_region_count() {
    let mut correct = 0u64;
    let mut stalls = 0u64;
    let mut heals = 0u64;
    for seed in BASE_SEED..BASE_SEED + CASES {
        let scenario = ChaosScenario::generate(seed);
        let outcome = run_scenario(&scenario);
        heals += u64::from(outcome.report.heals);
        match outcome.verdict {
            ChaosVerdict::Correct => correct += 1,
            ChaosVerdict::Stall => stalls += 1,
            ChaosVerdict::Wrong { got, want } => {
                // Minimize before failing so the report is actionable.
                let minimal = shrink_plan(&scenario, |o| !o.verdict.is_safe());
                panic!(
                    "seed {seed}: distributed answer {got} vs oracle {want}; \
                     minimal schedule ({} of {} events): {:#?}",
                    minimal.len(),
                    scenario.plan.len(),
                    minimal.events()
                );
            }
        }
    }
    assert_eq!(correct + stalls, CASES);
    assert!(
        correct > stalls,
        "chaos should usually be survivable: {correct} correct vs {stalls} stalled"
    );
    assert!(
        heals > 0,
        "some schedule must have tripped the self-healing loop"
    );
}

#[test]
fn scenarios_replay_bit_identically() {
    for seed in BASE_SEED..BASE_SEED + 5 {
        let scenario = ChaosScenario::generate(seed);
        let a = run_scenario(&scenario);
        let b = run_scenario(&scenario);
        assert_eq!(a.verdict, b.verdict, "seed {seed}");
        assert_eq!(a.report, b.report, "seed {seed}");
        assert_eq!(a.answers, b.answers, "seed {seed}");
    }
}

#[test]
fn shrunk_schedules_still_reproduce_their_failure() {
    // Find a stalling scenario in the lane, shrink it, and verify the
    // minimized schedule still stalls — the contract that makes shrunk
    // reports trustworthy.
    let stalled = (BASE_SEED..BASE_SEED + CASES)
        .map(ChaosScenario::generate)
        .find(|s| run_scenario(s).verdict == ChaosVerdict::Stall);
    let Some(scenario) = stalled else {
        // Lane produced no stall — acceptable (nothing to shrink).
        return;
    };
    let minimal = shrink_plan(&scenario, |o| o.verdict == ChaosVerdict::Stall);
    assert!(minimal.len() <= scenario.plan.len());
    assert!(!minimal.is_empty(), "a stall needs at least one fault");
    let replay = run_scenario_with_plan(&scenario, minimal.clone());
    assert_eq!(replay.verdict, ChaosVerdict::Stall, "{minimal:?}");
    // 1-minimality: removing any remaining event loses the stall.
    for i in 0..minimal.len() {
        let weaker = minimal.without_event(i);
        assert_ne!(
            run_scenario_with_plan(&scenario, weaker).verdict,
            ChaosVerdict::Stall,
            "event {i} of the shrunk schedule is removable"
        );
    }
}
