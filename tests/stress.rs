//! Large-scale end-to-end runs. The default-run sizes keep CI fast; the
//! `#[ignore]`d giants are for manual validation:
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```

use wsn::net::{DeploymentSpec, LinkModel};
use wsn::topoquery::{
    label_regions, run_dandc_physical, run_dandc_vm, Field, FieldSpec, Implementation,
};

#[test]
fn medium_scale_vm_side_64() {
    // 4096 virtual nodes on the VM.
    let side = 64u32;
    let field = Field::generate(
        FieldSpec::Blobs {
            count: 6,
            amplitude: 10.0,
            radius: 6.0,
        },
        side,
        3,
    );
    let out = run_dandc_vm(side, &field, 5.0, 1, Implementation::Native);
    let truth = label_regions(&field.threshold(5.0));
    assert_eq!(out.summary.unwrap().region_count(), truth.region_count());
}

#[test]
fn medium_scale_physical_side_8_dense() {
    // 512 physical nodes emulating an 8×8 grid, end to end.
    let side = 8u32;
    let field = Field::generate(
        FieldSpec::RandomCells {
            p: 0.4,
            hot: 1.0,
            cold: 0.0,
        },
        side,
        9,
    );
    let deployment = DeploymentSpec::per_cell(side, 8).generate(17);
    let (out, reports) = run_dandc_physical(
        deployment,
        LinkModel::ideal(),
        0.5,
        &field,
        17,
        Implementation::Native,
    );
    assert!(reports.topo.complete && reports.bind.unique);
    let truth = label_regions(&field.threshold(0.5));
    assert_eq!(out.summary.unwrap().region_count(), truth.region_count());
}

#[test]
#[ignore = "manual: ~4096 physical nodes, run with --release"]
fn giant_physical_side_16() {
    let side = 16u32;
    let field = Field::generate(
        FieldSpec::Blobs {
            count: 5,
            amplitude: 10.0,
            radius: 3.0,
        },
        side,
        5,
    );
    let deployment = DeploymentSpec::per_cell(side, 16).generate(5);
    assert_eq!(deployment.node_count(), 4096);
    let (out, reports) = run_dandc_physical(
        deployment,
        LinkModel::ideal(),
        5.0,
        &field,
        5,
        Implementation::Native,
    );
    assert!(reports.topo.complete && reports.bind.unique);
    let truth = label_regions(&field.threshold(5.0));
    assert_eq!(out.summary.unwrap().region_count(), truth.region_count());
}

#[test]
#[ignore = "manual: 16384 virtual nodes on the VM, run with --release"]
fn giant_vm_side_128() {
    let side = 128u32;
    let field = Field::generate(
        FieldSpec::RandomCells {
            p: 0.3,
            hot: 1.0,
            cold: 0.0,
        },
        side,
        1,
    );
    let out = run_dandc_vm(side, &field, 0.5, 1, Implementation::Native);
    let truth = label_regions(&field.threshold(0.5));
    assert_eq!(out.summary.unwrap().region_count(), truth.region_count());
}
