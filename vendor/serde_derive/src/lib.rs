//! Vendored no-op derive macros for `Serialize` / `Deserialize`.
//!
//! The workspace only uses serde derives as forward-compatible markers on
//! plain data types — nothing serializes through serde at runtime (the
//! telemetry layer hand-rolls its JSON). These derives therefore expand to
//! nothing, which keeps offline builds dependency-free while leaving every
//! `#[derive(Serialize, Deserialize)]` in the source untouched.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
