//! Vendored minimal subset of the `serde` crate API.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types as a
//! forward-compatible marker but never serializes through serde — trace
//! export is hand-rolled JSONL in `wsn-obs`. For offline builds we vendor
//! marker traits plus no-op derive macros; swapping back to real serde is
//! a Cargo.toml-only change.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
