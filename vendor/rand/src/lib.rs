//! Vendored minimal subset of the `rand` crate API.
//!
//! This workspace builds in fully offline environments, so instead of the
//! real `rand` crate we vendor exactly the trait surface the code depends
//! on: [`RngCore`] and [`SeedableRng`]. The workspace's only generator,
//! `wsn_sim::DetRng`, ships its own xoshiro256++ implementation and merely
//! implements these traits for interoperability; no distribution code or
//! OS entropy is ever used, so nothing else from `rand` is needed.
//!
//! Trait signatures match rand 0.9 so the workspace can be pointed back at
//! the real crate without source changes.

#![forbid(unsafe_code)]

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type, typically a fixed-size byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a new generator from the given seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a new generator from a `u64` seed, expanding it through
    /// SplitMix64 (the same procedure rand 0.9 documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a = Counter::seed_from_u64(42).0;
        let b = Counter::seed_from_u64(42).0;
        assert_eq!(a, b);
        assert_ne!(a, Counter::seed_from_u64(43).0);
    }

    #[test]
    fn fill_bytes_fills() {
        let mut c = Counter(0);
        let mut buf = [0u8; 5];
        c.fill_bytes(&mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5]);
    }
}
