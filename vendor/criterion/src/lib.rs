//! Vendored minimal benchmarking harness.
//!
//! API-compatible with the subset of `criterion` the workspace's benches
//! use: `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], `bench_function`, `bench_with_input`,
//! and [`BenchmarkId`]. Instead of criterion's full statistical pipeline it
//! takes `sample_size` wall-clock samples of an adaptively sized batch and
//! prints min/median/max ns per iteration — enough to compare hot-path
//! changes without any external dependency.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `function` with a displayed `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified only by its parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self, group: &str) -> String {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => format!("{group}/{p}"),
            (f, Some(p)) => format!("{group}/{f}/{p}"),
            (f, None) => format!("{group}/{f}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    sample_size: usize,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Measures `f`, batching iterations so each sample spans enough wall
    /// clock to be meaningful.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate the per-call cost.
        let start = Instant::now();
        black_box(f());
        let estimate = start.elapsed().as_nanos().max(1);
        // Aim for ~2ms per sample, capped to keep slow bodies bounded.
        let batch = ((2_000_000 / estimate) as usize).clamp(1, 10_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / batch as f64);
        }
    }

    fn report(&self, label: &str) {
        let mut xs = self.samples.clone();
        if xs.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
        let min = xs[0];
        let max = xs[xs.len() - 1];
        let median = xs[xs.len() / 2];
        println!(
            "{label:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&id.label(&self.name));
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&id.label(&self.name));
        self
    }

    /// Ends the group (printing is per-benchmark, so this is cosmetic).
    pub fn finish(self) {}
}

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(10);
        f(&mut b);
        b.report(&id.label(""));
        self
    }
}

/// Bundles benchmark functions into a single runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a bench binary, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. --bench); none are needed here.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 8).label("g"), "g/f/8");
        assert_eq!(BenchmarkId::from_parameter(3).label("g"), "g/3");
        assert_eq!(BenchmarkId::from("f").label("g"), "g/f");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| x.wrapping_mul(3))
        });
        group.finish();
    }
}
