//! Vendored deterministic property-testing shim.
//!
//! API-compatible with the subset of `proptest` this workspace uses:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! the [`Strategy`] trait with `prop_map`, range strategies over the
//! primitive numeric types, tuple strategies, and
//! [`collection::vec`]. Unlike real proptest there is no shrinking and
//! no persistence: inputs are drawn from a deterministic generator
//! seeded by the test's module path and name, so every run explores the
//! same cases — which is exactly what a bit-reproducible simulation
//! workspace wants from its test suite.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not count
    /// against the case budget.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of a single generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic input generator (SplitMix64), seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from an arbitrary string (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let off = (u128::from(rng.next_u64()) % span) as $t;
                self.start + off
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + (self.end - self.start) * rng.unit_f64();
        // Guard against rounding up to the exclusive bound.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1);
            let n = self.len.start + (rng.next_u64() as usize) % span;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };

    /// Namespace mirror so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition, failing the current case (not the process) on
/// violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality of two expressions (compared by value, reported with
/// `Debug`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, "left = {:?}, right = {:?}", left, right);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "left = {:?}, right = {:?}: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality of two expressions.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, "both sides = {:?}", left);
    }};
}

/// Rejects the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests. Each `#[test] fn name(x in strategy, ..)`
/// becomes a plain test that draws `cases` deterministic inputs and runs
/// the body against each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($config) $($rest)*);
    };
    (@body ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                let mut executed = 0u32;
                let mut attempts = 0u32;
                while executed < config.cases {
                    attempts += 1;
                    if attempts > config.cases.saturating_mul(20).max(100) {
                        panic!(
                            "proptest '{}': too many rejected cases ({} attempts for {} target cases)",
                            stringify!($name),
                            attempts,
                            config.cases
                        );
                    }
                    $(let $parm = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    let outcome: $crate::TestCaseResult =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => executed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest '{}' failed after {} passing cases: {}",
                            stringify!($name),
                            executed,
                            msg
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    proptest! {
        /// The macro machinery itself: strategies, map, vec, assume.
        #[test]
        fn macro_machinery(
            x in 0u64..100,
            pair in (0u8..4, 0.0f64..1.0),
            xs in prop::collection::vec(0u32..10, 0..20),
            mapped in (1u32..5).prop_map(|p| 1u32 << p),
        ) {
            prop_assume!(x != 99);
            prop_assert!(x < 99);
            prop_assert!(pair.0 < 4 && pair.1 < 1.0);
            prop_assert!(xs.len() < 20);
            prop_assert_eq!(mapped.count_ones(), 1);
            prop_assert_ne!(mapped, 0);
        }
    }
}
